//! Inference-throughput microbenches for the tapeless prediction path:
//!
//! * `tape_forward_single` — one prediction through the training tape
//!   (graph forward builds tape nodes, clones parameters into leaves).
//! * `tapeless_forward_single` — the same prediction through
//!   `CostEstimator::predict` (scratch-arena forward, no tape).
//! * `tapeless_predict_batch64` — 64 predictions through one
//!   `predict_batch` call (scoped-thread chunks).
//! * `candidate_scoring_reencode_tape` — the pre-refactor optimizer inner
//!   loop: full re-encode plus taped forward per candidate.
//! * `candidate_scoring_ctx_batched` — the current loop: one
//!   `EncodeContext`, per-candidate incremental encode, one batched
//!   prediction.
//!
//! After the criterion timings, a summary reports predictions/sec for
//! both candidate-scoring variants and the end-to-end speedup.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zt_core::features::FeatureMask;
use zt_core::graph::{encode, EncodeContext};
use zt_core::model::{ModelConfig, ZeroTuneModel};
use zt_core::CostEstimator;
use zt_dspsim::cluster::{Cluster, ClusterType};
use zt_dspsim::ChainingMode;
use zt_nn::Tape;
use zt_query::{LogicalPlan, ParallelQueryPlan, QueryGenerator, QueryStructure};

fn fixture() -> (LogicalPlan, Cluster) {
    let mut rng = StdRng::seed_from_u64(7);
    let plan = QueryGenerator::seen().generate(QueryStructure::TwoWayJoin, &mut rng);
    let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
    (plan, cluster)
}

/// Parallelism assignments standing in for an optimizer candidate set.
fn candidates(plan: &LogicalPlan, n: usize) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(11);
    (0..n)
        .map(|_| {
            (0..plan.num_ops())
                .map(|_| 1 << rng.gen_range(0..5u32))
                .collect()
        })
        .collect()
}

/// One prediction the way the seed scored candidates: a fresh tape per
/// forward pass, denormalized at the end.
fn tape_predict(model: &ZeroTuneModel, graph: &zt_core::GraphEncoding) -> (f64, f64) {
    let mut tape = Tape::new();
    let out = model.forward(&mut tape, graph);
    let v = tape.value(out);
    let d = model.norm.denormalize([v.data[0], v.data[1]]);
    (d.0, d.1)
}

fn score_reencode_tape(
    model: &ZeroTuneModel,
    plan: &LogicalPlan,
    cluster: &Cluster,
    cands: &[Vec<u32>],
) -> f64 {
    let mut best = f64::INFINITY;
    for cand in cands {
        let pqp = ParallelQueryPlan::with_parallelism(plan.clone(), cand.clone());
        let graph = encode(&pqp, cluster, ChainingMode::Auto, &FeatureMask::all());
        let (lat, _) = tape_predict(model, &graph);
        best = best.min(lat);
    }
    best
}

fn score_ctx_batched(
    model: &ZeroTuneModel,
    plan: &LogicalPlan,
    cluster: &Cluster,
    cands: &[Vec<u32>],
) -> f64 {
    let ctx = EncodeContext::new(plan, cluster, &FeatureMask::all());
    let mut pqp = ParallelQueryPlan::new(plan.clone());
    let graphs: Vec<_> = cands
        .iter()
        .map(|cand| {
            pqp.parallelism.clone_from(cand);
            pqp.reset_partitioning();
            ctx.encode(&pqp, cluster, ChainingMode::Auto)
        })
        .collect();
    model
        .predict_batch(&graphs)
        .iter()
        .fold(f64::INFINITY, |b, p| b.min(p.latency_ms))
}

fn bench_single(c: &mut Criterion) {
    let (plan, cluster) = fixture();
    let n = plan.num_ops();
    let pqp = ParallelQueryPlan::with_parallelism(plan, vec![4; n]);
    let graph = encode(&pqp, &cluster, ChainingMode::Auto, &FeatureMask::all());
    let model = ZeroTuneModel::new(ModelConfig::default());
    c.bench_function("tape_forward_single", |b| {
        b.iter(|| tape_predict(&model, std::hint::black_box(&graph)));
    });
    c.bench_function("tapeless_forward_single", |b| {
        b.iter(|| model.predict(std::hint::black_box(&graph)));
    });
}

fn bench_batch(c: &mut Criterion) {
    let (plan, cluster) = fixture();
    let cands = candidates(&plan, 64);
    let ctx = EncodeContext::new(&plan, &cluster, &FeatureMask::all());
    let mut pqp = ParallelQueryPlan::new(plan.clone());
    let graphs: Vec<_> = cands
        .iter()
        .map(|cand| {
            pqp.parallelism.clone_from(cand);
            pqp.reset_partitioning();
            ctx.encode(&pqp, &cluster, ChainingMode::Auto)
        })
        .collect();
    let model = ZeroTuneModel::new(ModelConfig::default());
    c.bench_function("tapeless_predict_batch64", |b| {
        b.iter(|| model.predict_batch(std::hint::black_box(&graphs)));
    });
}

fn bench_candidate_scoring(c: &mut Criterion) {
    let (plan, cluster) = fixture();
    let cands = candidates(&plan, 48);
    let model = ZeroTuneModel::new(ModelConfig::default());
    c.bench_function("candidate_scoring_reencode_tape", |b| {
        b.iter(|| score_reencode_tape(&model, &plan, &cluster, std::hint::black_box(&cands)));
    });
    c.bench_function("candidate_scoring_ctx_batched", |b| {
        b.iter(|| score_ctx_batched(&model, &plan, &cluster, std::hint::black_box(&cands)));
    });
}

/// Predictions/sec for both candidate-scoring variants, plus the speedup.
fn throughput_summary(_c: &mut Criterion) {
    let (plan, cluster) = fixture();
    let cands = candidates(&plan, 48);
    let model = ZeroTuneModel::new(ModelConfig::default());

    let time = |f: &dyn Fn() -> f64| {
        // warm-up, then time enough rounds to fill ~1s
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        let per_round = t0.elapsed().as_secs_f64();
        let rounds = ((1.0 / per_round.max(1e-9)) as usize).clamp(1, 10_000);
        let t1 = std::time::Instant::now();
        for _ in 0..rounds {
            std::hint::black_box(f());
        }
        t1.elapsed().as_secs_f64() / rounds as f64
    };

    let old = time(&|| score_reencode_tape(&model, &plan, &cluster, &cands));
    let new = time(&|| score_ctx_batched(&model, &plan, &cluster, &cands));
    let n = cands.len() as f64;
    println!();
    println!(
        "candidate scoring, re-encode + tape:    {:>10.0} predictions/sec",
        n / old
    );
    println!(
        "candidate scoring, context + batched:   {:>10.0} predictions/sec",
        n / new
    );
    println!("speedup: {:.1}x", old / new);
}

criterion_group!(
    benches,
    bench_single,
    bench_batch,
    bench_candidate_scoring,
    throughput_summary
);
criterion_main!(benches);
