//! Telemetry overhead microbenches.
//!
//! * `telemetry_span_off` / `telemetry_counter_off` — the disabled-mode
//!   fast path. This is the number that matters: instrumented hot loops
//!   run with telemetry off by default, so a guard must cost no more
//!   than an atomic load and a branch (single-digit nanoseconds).
//! * `telemetry_span_summary_1k` / `telemetry_span_trace_1k` — 1000
//!   spans plus one registry reset per iteration (reset keeps the
//!   recording state bounded during the bench); divide by 1000 for the
//!   per-span cost of the enabled modes.
//! * `telemetry_off_vs_instrumented_datagen` — end-to-end check that an
//!   instrumented `generate_dataset_report` with telemetry off performs
//!   like the uninstrumented baseline did (spans sit outside the
//!   per-sample loop, so the overhead is per shard, not per sample).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use zt_core::datagen::{generate_dataset_report, GenPlan};
use zt_core::dataset::GenConfig;
use zt_core::telemetry::{self, Mode};

fn bench_span_off(c: &mut Criterion) {
    telemetry::set_mode(Mode::Off);
    c.bench_function("telemetry_span_off", |b| {
        b.iter(|| {
            let _g = telemetry::span("bench.overhead");
            black_box(());
        });
    });
}

fn bench_counter_off(c: &mut Criterion) {
    telemetry::set_mode(Mode::Off);
    c.bench_function("telemetry_counter_off", |b| {
        b.iter(|| telemetry::counter_add("bench.counter", 1));
    });
}

fn bench_span_summary(c: &mut Criterion) {
    telemetry::set_mode(Mode::Summary);
    c.bench_function("telemetry_span_summary_1k", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                let _g = telemetry::span("bench.overhead");
            }
            telemetry::reset();
        });
    });
    telemetry::set_mode(Mode::Off);
    telemetry::reset();
}

fn bench_span_trace(c: &mut Criterion) {
    telemetry::set_mode(Mode::Trace);
    c.bench_function("telemetry_span_trace_1k", |b| {
        b.iter(|| {
            for _ in 0..1000 {
                let _g = telemetry::span("bench.overhead");
            }
            telemetry::reset();
        });
    });
    telemetry::set_mode(Mode::Off);
    telemetry::reset();
}

fn bench_datagen_off(c: &mut Criterion) {
    telemetry::set_mode(Mode::Off);
    let cfg = GenConfig::seen();
    c.bench_function("telemetry_off_vs_instrumented_datagen", |b| {
        b.iter(|| {
            let (data, _) =
                generate_dataset_report(&cfg, 64, 0xBE7C, &GenPlan::serial().with_shard_size(32));
            black_box(data.len())
        });
    });
}

criterion_group!(
    benches,
    bench_span_off,
    bench_counter_off,
    bench_span_summary,
    bench_span_trace,
    bench_datagen_off
);
criterion_main!(benches);
