//! Dense-kernel microbenches: the 8-wide lane kernels against their
//! scalar oracles.
//!
//! * `matmul_{lanes,scalar}_256x48x48` — the GNN's hot shape class
//!   (a node batch against an L1-resident hidden×hidden weight panel).
//! * `matmul_{lanes,scalar}_16x48x48` — the small per-plan shape seen
//!   during tuning (candidate batch × hidden).
//! * `relu_{lanes,scalar}_16k`, `adam_{lanes,scalar}_16k` — element-wise
//!   passes at a training-sized parameter count.
//!
//! Both flavors are always compiled (the `scalar-kernels` feature only
//! flips which one the library's dispatch sites call), so one binary can
//! time the pair and print the speedup — the equivalence tests in
//! `tests/kernel_equivalence.rs` pin them to identical results.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Instant;
use zt_nn::kernels::{
    adam_update_lanes, adam_update_scalar, matmul_into_lanes, matmul_into_scalar, relu_lanes,
    relu_scalar, AdamStep,
};

/// Deterministic pseudo-random fill (no RNG dependency needed here); a
/// fixed stride keeps some exact zeros in the stream so the kernels' zero
/// skip stays on its realistic (mostly-dense) path.
fn fill(n: usize, seed: u32) -> Vec<f32> {
    let mut state = seed.wrapping_mul(2_654_435_761).wrapping_add(1);
    (0..n)
        .map(|i| {
            state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
            if i % 37 == 0 {
                0.0
            } else {
                ((state >> 8) as f32 / (1u32 << 24) as f32) - 0.5
            }
        })
        .collect()
}

fn bench_matmul(c: &mut Criterion, rows: usize, inner: usize, cols: usize) {
    let a = fill(rows * inner, 1);
    let b = fill(inner * cols, 2);
    let mut out = vec![0.0f32; rows * cols];
    let shape = format!("{rows}x{inner}x{cols}");
    c.bench_function(&format!("matmul_lanes_{shape}"), |bench| {
        bench.iter(|| {
            out.fill(0.0);
            matmul_into_lanes(&a, rows, inner, &b, cols, &mut out);
            std::hint::black_box(out[0])
        });
    });
    c.bench_function(&format!("matmul_scalar_{shape}"), |bench| {
        bench.iter(|| {
            out.fill(0.0);
            matmul_into_scalar(&a, rows, inner, &b, cols, &mut out);
            std::hint::black_box(out[0])
        });
    });
}

fn bench_elementwise(c: &mut Criterion) {
    const N: usize = 16_384;
    let src = fill(N, 3);
    let mut buf = src.clone();
    c.bench_function("relu_lanes_16k", |bench| {
        bench.iter(|| {
            buf.copy_from_slice(&src);
            relu_lanes(&mut buf);
            std::hint::black_box(buf[0])
        });
    });
    c.bench_function("relu_scalar_16k", |bench| {
        bench.iter(|| {
            buf.copy_from_slice(&src);
            relu_scalar(&mut buf);
            std::hint::black_box(buf[0])
        });
    });

    let grad = fill(N, 4);
    let step = AdamStep {
        lr: 1e-3,
        beta1: 0.9,
        beta2: 0.999,
        eps: 1e-8,
        b1t: 0.1,
        b2t: 0.001,
    };
    let (mut value, mut m, mut v) = (fill(N, 5), vec![0.0f32; N], vec![0.0f32; N]);
    c.bench_function("adam_lanes_16k", |bench| {
        bench.iter(|| {
            adam_update_lanes(&mut value, &mut m, &mut v, &grad, &step);
            std::hint::black_box(value[0])
        });
    });
    c.bench_function("adam_scalar_16k", |bench| {
        bench.iter(|| {
            adam_update_scalar(&mut value, &mut m, &mut v, &grad, &step);
            std::hint::black_box(value[0])
        });
    });
}

/// After the criterion timings, print a direct lanes-vs-scalar speedup
/// summary over a small shape sweep (wall-clock over a fixed rep count —
/// the number the acceptance gate reads).
fn speedup_summary() {
    eprintln!("\nmatmul lanes vs scalar speedup (fixed-rep wall clock):");
    for &(rows, inner, cols, reps) in &[
        (16usize, 48usize, 48usize, 4000usize),
        (64, 64, 64, 2000),
        (256, 48, 48, 500),
        (128, 128, 128, 300),
    ] {
        let a = fill(rows * inner, 11);
        let b = fill(inner * cols, 12);
        let mut out = vec![0.0f32; rows * cols];
        let time = |lanes: bool, out: &mut Vec<f32>| {
            let start = Instant::now();
            for _ in 0..reps {
                out.fill(0.0);
                if lanes {
                    matmul_into_lanes(&a, rows, inner, &b, cols, out);
                } else {
                    matmul_into_scalar(&a, rows, inner, &b, cols, out);
                }
                std::hint::black_box(&out[0]);
            }
            start.elapsed().as_secs_f64()
        };
        // interleave a warm-up of each before timing
        time(true, &mut out);
        time(false, &mut out);
        let t_lanes = time(true, &mut out);
        let t_scalar = time(false, &mut out);
        eprintln!(
            "  {rows:>3}x{inner:>3}x{cols:>3}: lanes {:>8.2} µs/op, scalar {:>8.2} µs/op, speedup {:.2}x",
            t_lanes / reps as f64 * 1e6,
            t_scalar / reps as f64 * 1e6,
            t_scalar / t_lanes
        );
    }
}

fn benches(c: &mut Criterion) {
    bench_matmul(c, 16, 48, 48);
    bench_matmul(c, 256, 48, 48);
    bench_elementwise(c);
    speedup_summary();
}

criterion_group!(kernels, benches);
criterion_main!(kernels);
