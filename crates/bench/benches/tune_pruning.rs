//! Optimizer bounds-pruning microbenches:
//!
//! * `tune_pruned_spike_2M` — `tune` with the interval-bounds pre-pass
//!   dropping provably infeasible / dominated candidates before model
//!   inference (the default path).
//! * `tune_exhaustive_spike_2M` — the same tuning run with `prune: false`,
//!   scoring the full candidate set.
//! * `bounds_analyze_spike` — one interval analysis in isolation: the
//!   per-candidate price of the pre-pass.
//! * `tune_lattice_bnb_spike_2M` / `tune_lattice_exhaustive_spike_2M` —
//!   the product-lattice search space explored by bounds-guided
//!   branch-and-bound versus scored exhaustively (`prune: false`); both
//!   return the identical winner by construction, the question is only
//!   how much of the lattice the walk can refuse to analyze.
//!
//! After the criterion timings, a summary reports the pruned fraction at
//! a sweep of offered rates — the pre-pass only pays off when candidates
//! are provably useless, which happens once the offered rate pushes
//! low-parallelism plans past their utilization ceiling.

use criterion::{criterion_group, criterion_main, Criterion};
use zt_core::bounds::{analyze, BoundsConfig};
use zt_core::model::{ModelConfig, ZeroTuneModel};
use zt_core::optimizer::{tune, OptimizerConfig, SearchSpace};
use zt_dspsim::cluster::{Cluster, ClusterType};
use zt_query::benchmarks::spike_detection;
use zt_query::ParallelQueryPlan;

const RATE: f64 = 2_000_000.0;

fn cluster() -> Cluster {
    Cluster::homogeneous(ClusterType::M510, 4, 10.0)
}

fn model() -> ZeroTuneModel {
    ZeroTuneModel::new(ModelConfig {
        hidden: 48,
        seed: 7,
    })
}

fn cfg(prune: bool) -> OptimizerConfig {
    OptimizerConfig {
        prune,
        strict: false,
        ..OptimizerConfig::default()
    }
}

fn bench_pruned(c: &mut Criterion) {
    let (m, cl, plan) = (model(), cluster(), spike_detection(RATE));
    c.bench_function("tune_pruned_spike_2M", |b| {
        b.iter(|| {
            let out = tune(&m, &plan, &cl, &cfg(true)).expect("valid plan");
            std::hint::black_box(out.candidates_evaluated)
        });
    });
}

fn bench_exhaustive(c: &mut Criterion) {
    let (m, cl, plan) = (model(), cluster(), spike_detection(RATE));
    c.bench_function("tune_exhaustive_spike_2M", |b| {
        b.iter(|| {
            let out = tune(&m, &plan, &cl, &cfg(false));
            std::hint::black_box(out.expect("valid plan").candidates_evaluated)
        });
    });
}

fn lattice_cfg(prune: bool) -> OptimizerConfig {
    OptimizerConfig {
        search: SearchSpace::lattice(),
        ..cfg(prune)
    }
}

fn bench_lattice_bnb(c: &mut Criterion) {
    let (m, cl, plan) = (model(), cluster(), spike_detection(RATE));
    c.bench_function("tune_lattice_bnb_spike_2M", |b| {
        b.iter(|| {
            let out = tune(&m, &plan, &cl, &lattice_cfg(true)).expect("valid plan");
            std::hint::black_box(out.search_visited)
        });
    });
}

fn bench_lattice_exhaustive(c: &mut Criterion) {
    let (m, cl, plan) = (model(), cluster(), spike_detection(RATE));
    c.bench_function("tune_lattice_exhaustive_spike_2M", |b| {
        b.iter(|| {
            let out = tune(&m, &plan, &cl, &lattice_cfg(false)).expect("valid plan");
            std::hint::black_box(out.search_visited)
        });
    });
}

fn bench_analyze(c: &mut Criterion) {
    let cl = cluster();
    let pqp = ParallelQueryPlan::with_parallelism(spike_detection(RATE), vec![4; 4]);
    let bcfg = BoundsConfig::default();
    c.bench_function("bounds_analyze_spike", |b| {
        b.iter(|| {
            let report = analyze(&pqp, &cl, &bcfg);
            std::hint::black_box(report.utilization.hi)
        });
    });
}

fn summary() {
    let (m, cl) = (model(), cluster());
    eprintln!("\npruned fraction vs offered rate (spike detection, 4x m510):");
    for rate in [10e3, 100e3, 500e3, 1e6, 2e6, 5e6] {
        let out = tune(&m, &spike_detection(rate), &cl, &cfg(true)).expect("valid plan");
        let total = out.candidates_evaluated + out.candidates_pruned;
        eprintln!(
            "  {:>9.0} ev/s: {:>3} of {:>3} candidates pruned ({:.0}%)",
            rate,
            out.candidates_pruned,
            total,
            100.0 * out.candidates_pruned as f64 / total as f64
        );
    }
}

fn benches(c: &mut Criterion) {
    bench_pruned(c);
    bench_exhaustive(c);
    bench_analyze(c);
    bench_lattice_bnb(c);
    bench_lattice_exhaustive(c);
    summary();
}

criterion_group!(tune_pruning, benches);
criterion_main!(tune_pruning);
