//! Bench target regenerating Fig. 8a–e (generalization across unseen
//! parameter values).
//!
//! Run: `cargo bench --bench fig8_unseen_params`

fn main() {
    let scale = zt_bench::bench_scale();
    eprintln!("[bench] Fig. 8 at scale `{}`", scale.name);
    let start = std::time::Instant::now();
    let result = zt_experiments::exp3::run(&scale);
    zt_experiments::exp3::print(&result);
    println!("fig8_unseen_params: {:.1}s", start.elapsed().as_secs_f64());
}
