//! Criterion microbenches for the monotone dataflow analyses.
//!
//! `lint_plan` / `lint_pqp` now run the rate, key and class fixpoints on
//! every sealed plan, and `tune` consults `parallelism_cap()` when
//! shaping the lattice — so the analysis cost is on the pre-flight path
//! of every tuning call. These benches record the single-pass solve cost
//! (ns/op) on a deep keyed chain and on a benchmark query, and print the
//! lattice-size reduction the key-cardinality cap buys on the 12-op
//! chain.

use criterion::{criterion_group, criterion_main, Criterion};
use zt_core::dataflow::{analyze_plan, analyze_pqp};
use zt_core::ParallelismLattice;
use zt_dspsim::cluster::{Cluster, ClusterType};
use zt_query::operators::SinkOp;
use zt_query::{
    AggFunction, AggregateOp, DataType, FilterFunction, FilterOp, LogicalPlan, OperatorKind,
    ParallelQueryPlan, SourceOp, TupleSchema, WindowPolicy, WindowSpec,
};

/// A 12-operator chain with keyed aggregates that declare a key
/// cardinality: source → (filter → keyed-agg)×5 → sink. Every keyed agg
/// hash-partitions its input and caps its useful parallelism at
/// `ceil(K)`.
fn keyed_chain(key_cardinality: f64) -> LogicalPlan {
    let mut p = LogicalPlan::new("keyed_chain12");
    let mut prev = p.add(OperatorKind::Source(SourceOp {
        event_rate: 50_000.0,
        schema: TupleSchema::uniform(DataType::Int, 3),
        key_cardinality: Some(1_000.0),
    }));
    for _ in 0..5 {
        let f = p.add(OperatorKind::Filter(FilterOp {
            function: FilterFunction::Gt,
            literal_class: DataType::Int,
            selectivity: 0.9,
        }));
        p.connect(prev, f);
        let a = p.add(OperatorKind::Aggregate(AggregateOp {
            function: AggFunction::Avg,
            key_class: Some(DataType::Int),
            agg_class: DataType::Int,
            window: WindowSpec::tumbling(WindowPolicy::Time, 1_000.0),
            selectivity: 1.0,
            key_cardinality: Some(key_cardinality),
        }));
        p.connect(f, a);
        prev = a;
    }
    let k = p.add(OperatorKind::Sink(SinkOp));
    p.connect(prev, k);
    p
}

fn bench_dataflow(c: &mut Criterion) {
    let chain = keyed_chain(3.0);
    let chain_ir = chain.validate().expect("chain seals");
    let chain_pqp = {
        let n = chain.num_ops();
        ParallelQueryPlan::with_parallelism(chain.clone(), vec![4; n])
    };
    let spike = zt_query::benchmarks::spike_detection(10_000.0);
    let spike_ir = spike.validate().expect("benchmark seals");
    let spike_pqp = ParallelQueryPlan::new(spike.clone());

    // Lattice-size reduction from the key-cardinality cap on the 12-op
    // chain (the ZT704 condition `tune` applies): degrees at or beyond an
    // operator's cap collapse onto one canonical representative.
    let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
    let cfg = zt_core::OptimizerConfig::default();
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(cfg.seed);
    let candidates = zt_core::optimizer::enumerate_candidates(&chain, &cluster, &cfg, &mut rng);
    let uncapped = ParallelismLattice::from_candidates(&candidates, 4);
    let mut capped = ParallelismLattice::from_candidates(&candidates, 4);
    for (i, op) in chain.ops().iter().enumerate() {
        if let Some(cap) = op.kind.parallelism_cap() {
            let degrees = &mut capped.degrees[i];
            if let Some(&rep) = degrees.iter().find(|&&d| d >= cap) {
                degrees.retain(|&d| d < cap || d == rep);
            }
        }
    }
    println!(
        "dataflow cap on keyed_chain12: lattice {} -> {} points ({:.1}x reduction)",
        uncapped.size(),
        capped.size(),
        uncapped.size() as f64 / capped.size().max(1) as f64
    );
    assert!(
        capped.size() < uncapped.size(),
        "cap must shrink the lattice"
    );

    c.bench_function("dataflow/analyze_plan_chain12", |b| {
        b.iter(|| analyze_plan(std::hint::black_box(&chain), &chain_ir));
    });
    c.bench_function("dataflow/analyze_pqp_chain12", |b| {
        b.iter(|| analyze_pqp(std::hint::black_box(&chain_pqp), &chain_ir));
    });
    c.bench_function("dataflow/analyze_plan_spike", |b| {
        b.iter(|| analyze_plan(std::hint::black_box(&spike), &spike_ir));
    });
    c.bench_function("dataflow/lint_pqp_spike", |b| {
        b.iter(|| zt_core::lint_pqp(std::hint::black_box(&spike_pqp), None));
    });
}

criterion_group!(benches, bench_dataflow);
criterion_main!(benches);
