//! Bench target regenerating Fig. 1 / Fig. 5 (ZeroTune vs flat-vector
//! model architectures) at the bench scale.
//!
//! Run: `cargo bench --bench fig5_architectures`

fn main() {
    let scale = zt_bench::bench_scale();
    eprintln!("[bench] Fig. 5 at scale `{}`", scale.name);
    let start = std::time::Instant::now();
    let result = zt_experiments::exp1::run(&scale);
    // print only the architecture comparison (Table IV has its own bench)
    let arch_only = zt_experiments::exp1::Exp1Result {
        table4: vec![],
        architectures: result.architectures,
    };
    zt_experiments::exp1::print(&arch_only);
    println!("fig5_architectures: {:.1}s", start.elapsed().as_secs_f64());
}
