//! Bench target regenerating Fig. 10a–b (parallelism tuning vs greedy and
//! Dhalion).
//!
//! Run: `cargo bench --bench fig10_optimizer`

fn main() {
    let scale = zt_bench::bench_scale();
    eprintln!("[bench] Fig. 10 at scale `{}`", scale.name);
    let start = std::time::Instant::now();
    let result = zt_experiments::exp5::run(&scale);
    zt_experiments::exp5::print(&result);
    println!("fig10_optimizer: {:.1}s", start.elapsed().as_secs_f64());
}
