//! Bench target regenerating Fig. 6 (few-shot learning on complex joins).
//!
//! Run: `cargo bench --bench fig6_fewshot`

fn main() {
    let scale = zt_bench::bench_scale();
    eprintln!("[bench] Fig. 6 at scale `{}`", scale.name);
    let start = std::time::Instant::now();
    let result = zt_experiments::exp2::run(&scale);
    let few_shot_only = zt_experiments::exp2::Exp2Result {
        categories: vec![],
        few_shot: result.few_shot,
        scatter: result.scatter,
    };
    zt_experiments::exp2::print(&few_shot_only);
    println!("fig6_fewshot: {:.1}s", start.elapsed().as_secs_f64());
}
