//! Bench target regenerating Fig. 3 (parallelism degree and operator
//! grouping micro-benchmark).
//!
//! Run: `cargo bench --bench fig3_parallelism`

fn main() {
    let start = std::time::Instant::now();
    let result = zt_experiments::fig3::run(3_000_000.0, 8);
    zt_experiments::fig3::print(&result);
    println!("fig3_parallelism: {:.1}s", start.elapsed().as_secs_f64());
}
