//! # zt-bench
//!
//! `cargo bench` targets. One harness-free bench per paper table/figure —
//! each re-runs the corresponding experiment at the `smoke` scale and
//! prints the same rows/series the paper reports — plus a Criterion
//! microbench suite (`microbenches`) covering the performance-critical
//! paths (inference, graph encoding, the analytical solver, a training
//! epoch, and the discrete-event engine).
//!
//! The scale can be overridden via the `ZT_BENCH_SCALE` environment
//! variable (`smoke` / `standard` / `full`).

use zt_experiments::Scale;

/// Scale used by the per-figure bench targets.
pub fn bench_scale() -> Scale {
    match std::env::var("ZT_BENCH_SCALE").as_deref() {
        Ok(name) => Scale::by_name(name),
        Err(_) => Scale::smoke(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_smoke() {
        std::env::remove_var("ZT_BENCH_SCALE");
        assert_eq!(bench_scale().name, "smoke");
    }
}
