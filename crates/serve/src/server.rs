//! The daemon: bounded accept queue, scoped worker threads, routing,
//! hot-swap, graceful drain.
//!
//! # Lifecycle
//!
//! [`Server::bind`] binds the listener and builds the shared state;
//! [`BoundServer::run`] blocks serving (the `zt-serve` binary), while
//! [`BoundServer::spawn`] runs the same loop on a background thread and
//! returns a [`ServerHandle`] (the in-process harness used by the e2e
//! tests and `zt-load`).
//!
//! Inside `run`, everything lives under one `std::thread::scope`: N
//! request workers popping connections off a bounded queue, one
//! micro-batch scorer, and the accept loop on the calling thread. The
//! accept loop only enqueues; when the queue is full the connection is
//! answered `503` right there — the daemon sheds load instead of
//! buffering unboundedly.
//!
//! # Graceful shutdown
//!
//! [`ServerHandle::shutdown`] sets the stop flag and pokes the listener
//! with a throwaway connection so `accept` returns. The accept loop then
//! closes the queue; workers finish **everything already accepted**
//! (requests whose bytes have not even arrived yet included) before
//! exiting; the scorer drains the last batch after the workers are done.
//! No accepted request is ever dropped.
//!
//! # Telemetry
//!
//! Per-endpoint spans `serve.predict` / `serve.tune` / `serve.explain` /
//! `serve.lint` / `serve.healthz` / `serve.swap_model` plus latency
//! histograms `serve.<endpoint>_ms`; counters `serve.requests`,
//! `serve.cache_hit`, `serve.cache_miss`, `serve.rejected`, `serve.swap`
//! and the scorer's `serve.batch` span / `serve.batch_size` histogram.

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use zt_core::explain::{attribute, explain_bounds};
use zt_core::{
    analyze_with, lint_pqp, lint_wire_plan, tune, BoundsConfig, CostEstimator, EncodeContext,
    FeatureMask, OptimizerConfig, Severity, ZeroTuneModel,
};
use zt_dspsim::cluster::{Cluster, ClusterType};
use zt_dspsim::ChainingMode;

use crate::api::{
    self, ApiError, ExplainResponse, HealthResponse, LintDiagnostic, LintResponse, PredictResponse,
    SwapResponse, TuneResponse,
};
use crate::batch::MicroBatcher;
use crate::cache::{CacheStats, ResponseCache};
use crate::http::{self, HttpError, Request};
use crate::registry::{ModelRegistry, SwapRejection};

/// Serving knobs. `addr` takes `"host:0"` for an ephemeral test port.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    pub addr: String,
    /// Request worker threads.
    pub workers: usize,
    /// Accepted-but-unserved connection cap; beyond it new connections
    /// are answered 503 immediately.
    pub accept_queue: usize,
    /// Request body cap in bytes; larger declarations get 413.
    pub max_body_bytes: usize,
    /// Prediction cache capacity (entries).
    pub cache_capacity: usize,
    /// Micro-batch size cap for the scorer.
    pub batch_max: usize,
    /// Micro-batch coalescing window in microseconds.
    pub batch_wait_us: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".into(),
            workers: 4,
            accept_queue: 128,
            max_body_bytes: 8 * 1024 * 1024,
            cache_capacity: 4096,
            batch_max: 32,
            batch_wait_us: 150,
        }
    }
}

/// The reference deployment target when a request names no cluster: the
/// 4-worker homogeneous m510 cluster used throughout the benchmarks.
pub fn default_cluster() -> Cluster {
    Cluster::homogeneous(ClusterType::M510, 4, 10.0)
}

struct QueueState {
    conns: VecDeque<TcpStream>,
    closed: bool,
}

/// Bounded MPMC connection queue: `try_push` from the accept loop,
/// blocking `pop` from the workers, `close` to drain-and-exit.
struct AcceptQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    cap: usize,
}

impl AcceptQueue {
    fn new(cap: usize) -> Self {
        AcceptQueue {
            state: Mutex::new(QueueState {
                conns: VecDeque::new(),
                closed: false,
            }),
            cv: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Hands the connection back when the queue is at capacity so the
    /// caller can shed the load with a 503.
    fn try_push(&self, conn: TcpStream) -> Result<(), TcpStream> {
        let mut st = self.state.lock().expect("accept queue lock");
        if st.conns.len() >= self.cap {
            return Err(conn);
        }
        st.conns.push_back(conn);
        self.cv.notify_one();
        Ok(())
    }

    /// Next connection, or `None` once closed *and* drained.
    fn pop(&self) -> Option<TcpStream> {
        let mut st = self.state.lock().expect("accept queue lock");
        loop {
            if let Some(c) = st.conns.pop_front() {
                return Some(c);
            }
            if st.closed {
                return None;
            }
            st = self.cv.wait(st).expect("accept queue lock");
        }
    }

    fn close(&self) {
        self.state.lock().expect("accept queue lock").closed = true;
        self.cv.notify_all();
    }
}

/// State shared by the accept loop, workers, scorer and handle.
pub(crate) struct Shared {
    cfg: ServeConfig,
    registry: ModelRegistry,
    cache: ResponseCache,
    batcher: MicroBatcher,
    shutdown: AtomicBool,
    requests: AtomicU64,
    default_cluster: Cluster,
}

/// Constructor namespace; see [`Server::bind`].
pub struct Server;

impl Server {
    /// Bind the listener and assemble the serving state. Serving starts
    /// with [`BoundServer::run`] or [`BoundServer::spawn`].
    pub fn bind(cfg: ServeConfig, model: ZeroTuneModel) -> io::Result<BoundServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let shared = Arc::new(Shared {
            registry: ModelRegistry::new(model),
            cache: ResponseCache::new(cfg.cache_capacity),
            batcher: MicroBatcher::new(cfg.batch_max, cfg.batch_wait_us),
            shutdown: AtomicBool::new(false),
            requests: AtomicU64::new(0),
            default_cluster: default_cluster(),
            cfg,
        });
        Ok(BoundServer { listener, shared })
    }
}

/// A bound-but-not-yet-serving daemon.
pub struct BoundServer {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl BoundServer {
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serve until shutdown is signaled. Blocks the calling thread; all
    /// concurrency is scoped inside, so returning means fully drained.
    pub fn run(self) {
        let BoundServer { listener, shared } = self;
        let queue = AcceptQueue::new(shared.cfg.accept_queue);
        std::thread::scope(|s| {
            let workers: Vec<_> = (0..shared.cfg.workers.max(1))
                .map(|_| s.spawn(|| worker_loop(&queue, &shared)))
                .collect();
            let scorer = s.spawn(|| shared.batcher.run_scorer(&shared.registry));

            for conn in listener.incoming() {
                if shared.shutdown.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                if let Err(mut stream) = queue.try_push(stream) {
                    // Queue full: shed the load right here instead of
                    // buffering unboundedly. The request must still be
                    // consumed (bounded by a short timeout, so a slow
                    // sender cannot stall the accept loop) — closing
                    // with unread bytes in the receive buffer resets
                    // the connection and the peer never sees the 503.
                    zt_telemetry::counter_add("serve.rejected", 1);
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
                    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
                    if let Err(HttpError::TooLarge {
                        declared, buffered, ..
                    }) = http::read_request(&mut stream, shared.cfg.max_body_bytes)
                    {
                        drain_body(&mut stream, declared.saturating_sub(buffered));
                    }
                    let err =
                        ApiError::new(503, "overloaded", "accept queue full — retry with backoff");
                    let _ = http::write_response(&mut stream, err.status, &[], &err.body());
                }
            }

            // Drain: stop handing out new work, let workers finish what
            // was accepted, then let the scorer finish the last batch.
            queue.close();
            for w in workers {
                let _ = w.join();
            }
            shared.batcher.shutdown();
            let _ = scorer.join();
        });
    }

    /// Serve on a background thread; the returned handle controls the
    /// daemon (hot-swap, stats, graceful shutdown).
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let shared = Arc::clone(&self.shared);
        let join = std::thread::Builder::new()
            .name("zt-serve-accept".into())
            .spawn(move || self.run())?;
        Ok(ServerHandle { addr, shared, join })
    }
}

/// Remote control for a spawned daemon.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    join: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Currently serving model generation.
    pub fn model_version(&self) -> u64 {
        self.shared.registry.version()
    }

    /// Prediction-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Total requests whose HTTP head parsed, since boot.
    pub fn request_count(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// Lint- and certification-guarded hot-swap; on success the
    /// prediction cache is invalidated so no response rendered by older
    /// weights outlives the swap in the cache. In-flight requests finish
    /// on whichever version they snapshotted — internally consistent
    /// either way.
    pub fn swap_model(&self, model: ZeroTuneModel) -> Result<u64, SwapRejection> {
        let v = self.shared.registry.swap(model)?;
        self.shared.cache.clear();
        Ok(v)
    }

    /// [`ServerHandle::swap_model`] from `ZeroTuneModel::to_json` text.
    pub fn swap_model_json(&self, json: &str) -> Result<u64, SwapRejection> {
        let v = self.shared.registry.swap_json(json)?;
        self.shared.cache.clear();
        Ok(v)
    }

    /// Graceful shutdown: stop accepting, serve everything already
    /// accepted, drain the scorer, join every thread.
    pub fn shutdown(self) {
        self.shared.shutdown.store(true, Ordering::Release);
        // Poke the blocking accept() so the loop observes the flag.
        let _ = TcpStream::connect(self.addr);
        let _ = self.join.join();
    }
}

fn worker_loop(queue: &AcceptQueue, shared: &Shared) {
    while let Some(mut stream) = queue.pop() {
        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(30)));
        handle_connection(&mut stream, shared);
    }
}

/// Discard up to `remaining` unread body bytes so the rejection response
/// survives the close. Bodies beyond the drain cap are simply abandoned —
/// a multi-megabyte bogus upload is not worth reading to completion.
fn drain_body(stream: &mut TcpStream, remaining: usize) {
    const DRAIN_CAP: usize = 1 << 20;
    let mut left = remaining.min(DRAIN_CAP);
    let mut sink = [0u8; 4096];
    while left > 0 {
        match std::io::Read::read(stream, &mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => left = left.saturating_sub(n),
        }
    }
}

fn handle_connection(stream: &mut TcpStream, shared: &Shared) {
    match http::read_request(stream, shared.cfg.max_body_bytes) {
        Ok(req) => {
            shared.requests.fetch_add(1, Ordering::Relaxed);
            zt_telemetry::counter_add("serve.requests", 1);
            route(stream, &req, shared);
        }
        Err(HttpError::TooLarge {
            declared,
            max,
            buffered,
        }) => {
            // The head parsed — this is a real (oversized) request.
            shared.requests.fetch_add(1, Ordering::Relaxed);
            zt_telemetry::counter_add("serve.requests", 1);
            // Drain the in-flight body (bounded) before answering:
            // closing with unread bytes in the receive buffer makes the
            // kernel reset the connection and the client loses the 413.
            drain_body(stream, declared.saturating_sub(buffered));
            let err = ApiError::new(
                413,
                "payload_too_large",
                format!("declared body of {declared} bytes exceeds the {max}-byte cap"),
            );
            let _ = http::write_response(stream, err.status, &[], &err.body());
        }
        Err(HttpError::Bad(msg)) => {
            // Not counted as a request: the shutdown wake-up connection
            // and port scanners land here with zero parseable intent.
            let err = ApiError::new(400, "bad_request", msg);
            let _ = http::write_response(stream, err.status, &[], &err.body());
        }
        Err(HttpError::Io(_)) => {} // peer went away; nothing to answer
    }
}

/// Telemetry span path for a known route.
fn span_path(path: &str) -> Option<&'static str> {
    match path {
        "/predict" => Some("serve.predict"),
        "/tune" => Some("serve.tune"),
        "/explain" => Some("serve.explain"),
        "/lint" => Some("serve.lint"),
        "/healthz" => Some("serve.healthz"),
        "/swap" => Some("serve.swap_model"),
        _ => None,
    }
}

/// Latency-histogram name for a known route (`_ms` suffix keeps the
/// value out of canonical golden traces).
fn histogram_path(path: &str) -> Option<&'static str> {
    match path {
        "/predict" => Some("serve.predict_ms"),
        "/tune" => Some("serve.tune_ms"),
        "/explain" => Some("serve.explain_ms"),
        "/lint" => Some("serve.lint_ms"),
        "/healthz" => Some("serve.healthz_ms"),
        "/swap" => Some("serve.swap_model_ms"),
        _ => None,
    }
}

/// A handler's 200 body plus any extra response headers — or a
/// structured failure.
type Handled = Result<(String, Vec<(&'static str, &'static str)>), ApiError>;

fn route(stream: &mut TcpStream, req: &Request, shared: &Shared) {
    let started = Instant::now();
    let span_guard = span_path(&req.path).map(zt_telemetry::span);

    let outcome: Handled = match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(shared),
        ("POST", "/predict") => handle_predict(req, shared),
        ("POST", "/tune") => handle_tune(req, shared),
        ("POST", "/explain") => handle_explain(req, shared),
        ("POST", "/lint") => handle_lint(req, shared),
        ("POST", "/swap") => handle_swap(req, shared),
        (_, path) if span_path(path).is_some() => Err(ApiError::new(
            405,
            "method_not_allowed",
            format!("{} does not accept {}", path, req.method),
        )),
        (_, path) => Err(ApiError::new(
            404,
            "unknown_route",
            format!("no route `{path}`"),
        )),
    };

    match outcome {
        Ok((body, headers)) => {
            let _ = http::write_response(stream, 200, &headers, &body);
        }
        Err(e) => {
            let _ = http::write_response(stream, e.status, &[], &e.body());
        }
    }

    if let Some(h) = histogram_path(&req.path) {
        zt_telemetry::observe(h, started.elapsed().as_secs_f64() * 1e3);
    }
    drop(span_guard);
}

fn ok(body: String) -> Handled {
    Ok((body, Vec::new()))
}

fn render<T: serde::Serialize>(value: &T) -> Result<String, ApiError> {
    serde_json::to_string(value).map_err(|e| ApiError::new(500, "render_failed", e.to_string()))
}

fn handle_healthz(shared: &Shared) -> Handled {
    let cache = shared.cache.stats();
    let current = shared.registry.current();
    ok(render(&HealthResponse {
        status: "ok".into(),
        model_version: current.version,
        requests: shared.requests.load(Ordering::Relaxed),
        swaps: shared.registry.swap_count(),
        cache_entries: cache.entries,
        cache_hits: cache.hits,
        cache_misses: cache.misses,
        certificate: current.certificate.clone(),
    })?)
}

/// The canonical request → encoding path shared by `/predict` and
/// `/explain`: sealed-IR encode of the requested deployment on the
/// requested (or default) cluster, full feature mask, auto chaining —
/// exactly the offline `encode(pqp, cluster, ChainingMode::Auto,
/// &FeatureMask::all())` call, so predictions are bitwise comparable.
fn encode_request(
    req: &Request,
    shared: &Shared,
) -> Result<
    (
        zt_core::GraphEncoding,
        zt_query::ParallelQueryPlan,
        zt_query::PlanIr,
        Cluster,
    ),
    ApiError,
> {
    let v = api::parse_body(&req.body)?;
    let (pqp, ir) = api::deployment(&v)?;
    let cluster = api::cluster_of(&v, &shared.default_cluster)?;
    let mask = FeatureMask::all();
    let ctx = EncodeContext::with_ir(&pqp.plan, &ir, &cluster, &mask);
    let graph = ctx.encode_sealed(&pqp, &ir, &cluster, ChainingMode::Auto);
    Ok((graph, pqp, ir, cluster))
}

fn handle_predict(req: &Request, shared: &Shared) -> Handled {
    let (graph, _pqp, _ir, _cluster) = encode_request(req, shared)?;
    let graph_json = serde_json::to_string(&graph)
        .map_err(|e| ApiError::new(500, "encode_failed", e.to_string()))?;

    // Exact-key lookup against the current version. A body cached under
    // any version is internally consistent (it was rendered from that
    // version's weights and says so), and swap clears the cache, so a
    // hit can only be the current generation.
    let lookup_key = format!("v{}|{graph_json}", shared.registry.version());
    if let Some(body) = shared.cache.get(&lookup_key) {
        zt_telemetry::counter_add("serve.cache_hit", 1);
        return Ok((body, vec![("x-zt-cache", "hit")]));
    }
    zt_telemetry::counter_add("serve.cache_miss", 1);

    let rx = shared.batcher.submit(graph);
    let (pred, version) = rx
        .recv()
        .map_err(|_| ApiError::new(500, "scorer_gone", "prediction pipeline shut down"))?;
    let body = render(&PredictResponse {
        model_version: version,
        latency_ms: pred.latency_ms,
        throughput: pred.throughput,
    })?;
    // Insert under the version that actually scored it (a swap may have
    // landed between lookup and scoring).
    shared
        .cache
        .insert(format!("v{version}|{graph_json}"), body.clone());
    Ok((body, vec![("x-zt-cache", "miss")]))
}

/// The server-side tuning configuration: offline defaults with the
/// env-dependent knobs pinned (strict off — a daemon must answer, not
/// panic; pruning and key-cardinality capping on) plus the request's
/// explicit overrides. Part of the
/// serving determinism contract: same request + same model version ⇒
/// byte-identical response.
fn tune_config(v: &serde::Value) -> Result<OptimizerConfig, ApiError> {
    let mut cfg = OptimizerConfig {
        strict: false,
        prune: true,
        dataflow_cap: true,
        ..OptimizerConfig::default()
    };
    if let Some(wt) = api::num_field(v, "wt")? {
        if !(0.0..=1.0).contains(&wt) {
            return Err(ApiError::new(400, "bad_field", "`wt` must be in [0, 1]"));
        }
        cfg.wt = wt;
    }
    if let Some(seed) = api::num_field(v, "seed")? {
        cfg.seed = seed as u64;
    }
    if let Some(mp) = api::num_field(v, "max_parallelism")? {
        if mp < 1.0 {
            return Err(ApiError::new(400, "bad_field", "`max_parallelism` ≥ 1"));
        }
        cfg.max_parallelism = mp as u32;
    }
    Ok(cfg)
}

fn handle_tune(req: &Request, shared: &Shared) -> Handled {
    let v = api::parse_body(&req.body)?;
    let (plan, _ir) = api::wire_plan(&v)?;
    let cluster = api::cluster_of(&v, &shared.default_cluster)?;
    let cfg = tune_config(&v)?;
    let snapshot = shared.registry.current();
    // A structured tuner error (degenerate candidate set, exhausted search
    // budget, plan invalidated post-envelope) is the client's problem, not
    // a daemon crash: surface it as a 422 with the tuner's own message.
    let outcome = tune(&snapshot.model, &plan, &cluster, &cfg)
        .map_err(|e| ApiError::new(422, "tune_failed", e.to_string()))?;
    ok(render(&TuneResponse {
        model_version: snapshot.version,
        outcome,
    })?)
}

fn handle_explain(req: &Request, shared: &Shared) -> Handled {
    let (graph, pqp, ir, cluster) = encode_request(req, shared)?;
    let bounds = analyze_with(&pqp, &ir, &cluster, &BoundsConfig::default());
    let snapshot = shared.registry.current();
    let pred = snapshot.model.predict(&graph);
    let attr = attribute(&snapshot.model, &graph);
    let mut report = explain_bounds(&pqp, &bounds, Some(&pred));
    // Append the per-edge dataflow facts: same response shape, richer
    // rendered report.
    let dataflow = zt_core::dataflow::analyze_pqp(&pqp, &ir);
    report.push_str(&zt_core::explain::explain_dataflow(&pqp, &ir, &dataflow));
    ok(render(&ExplainResponse {
        model_version: snapshot.version,
        latency_ms: pred.latency_ms,
        throughput: pred.throughput,
        latency_bounds: [bounds.latency_ms.lo, bounds.latency_ms.hi],
        throughput_bounds: [bounds.throughput.lo, bounds.throughput.hi],
        latency_impact: attr.latency_impact,
        throughput_impact: attr.throughput_impact,
        report,
    })?)
}

fn handle_lint(req: &Request, shared: &Shared) -> Handled {
    let v = api::parse_body(&req.body)?;
    let plan_v = v
        .get("plan")
        .ok_or_else(|| ApiError::new(400, "missing_field", "request has no `plan` field"))?;
    let plan_json =
        serde_json::to_string(plan_v).map_err(|e| ApiError::new(400, "bad_json", e.to_string()))?;

    // `lint_wire_plan` folds envelope failures (ZT109 fingerprint
    // mismatch, ZT101 revalidation failures) into the report, so a
    // defective plan gets a 200 with diagnostics — that is the point of
    // the endpoint — rather than an opaque 4xx.
    let (sealed, mut report) = lint_wire_plan(&plan_json);
    if let Some((plan, _ir)) = sealed {
        let num_ops = plan.num_ops();
        let pqp = match api::parallelism_of(&v, num_ops)? {
            Some(par) => zt_query::ParallelQueryPlan::with_parallelism(plan, par),
            None => zt_query::ParallelQueryPlan::new(plan),
        };
        let cluster = api::cluster_of(&v, &shared.default_cluster)?;
        report = zt_core::Report::new(lint_pqp(&pqp, Some(&cluster)));
    }

    let diagnostics: Vec<LintDiagnostic> = report
        .diagnostics
        .iter()
        .map(|d| LintDiagnostic {
            code: d.code.to_string(),
            severity: d.severity.label().to_string(),
            message: d.message.clone(),
            anchor: d.anchor.as_ref().map(std::string::ToString::to_string),
        })
        .collect();
    let errors = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Warning)
        .count();
    ok(render(&LintResponse {
        errors,
        warnings,
        diagnostics,
    })?)
}

fn handle_swap(req: &Request, shared: &Shared) -> Handled {
    let text = std::str::from_utf8(&req.body)
        .map_err(|_| ApiError::new(400, "bad_json", "model body is not UTF-8"))?;
    match shared.registry.swap_json(text) {
        Ok(version) => {
            shared.cache.clear();
            ok(render(&SwapResponse {
                model_version: version,
            })?)
        }
        // the rejection's stable code (lint `model_rejected` or the
        // leading ZT6xx certification code) becomes the error code
        Err(rej) => Err(ApiError::new(422, &rej.code, rej.report)),
    }
}
