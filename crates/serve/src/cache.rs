//! The LRU prediction cache.
//!
//! Keying follows the `SimCache` idiom from `zt_dspsim`: the key is the
//! **exact** serialized content — here the model version plus the full
//! JSON of the encoded feature vector — compared as a whole string, so a
//! hit is only ever possible for a bitwise-identical encoding and the
//! cached value (the rendered response body) is returned byte-for-byte.
//! Sixteen mutex shards selected by FNV-1a over the key bytes keep
//! handler threads from contending on one lock.
//!
//! Recency is tracked with a global atomic stamp bumped on every lookup
//! and insert; when a shard outgrows its share of the capacity the entry
//! with the smallest stamp (the least recently touched) is evicted. The
//! scan is O(shard size), which at serving-cache sizes is noise next to a
//! model inference.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

const SHARDS: usize = 16;

struct Entry {
    stamp: u64,
    body: String,
}

/// Hit/miss/occupancy counters, mirrored into `serve.cache_*` telemetry
/// by the request handlers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub entries: usize,
}

/// Sharded exact-key LRU cache from request key to rendered response body.
pub struct ResponseCache {
    shards: Vec<Mutex<HashMap<String, Entry>>>,
    stamp: AtomicU64,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResponseCache {
    /// A cache holding at most ~`capacity` response bodies.
    pub fn new(capacity: usize) -> Self {
        ResponseCache {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            stamp: AtomicU64::new(0),
            per_shard_cap: (capacity / SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &str) -> &Mutex<HashMap<String, Entry>> {
        // FNV-1a over the key bytes picks the lock shard.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        &self.shards[(h as usize) % SHARDS]
    }

    /// The cached body for `key`, byte-identical to what was inserted.
    /// Refreshes the entry's recency stamp.
    pub fn get(&self, key: &str) -> Option<String> {
        let stamp = self.stamp.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(key).lock().expect("cache shard lock");
        match shard.get_mut(key) {
            Some(e) => {
                e.stamp = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.body.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or refresh) `key → body`, evicting least-recently-touched
    /// entries while the shard is over its capacity share.
    pub fn insert(&self, key: String, body: String) {
        let stamp = self.stamp.fetch_add(1, Ordering::Relaxed);
        let mut shard = self.shard_of(&key).lock().expect("cache shard lock");
        shard.insert(key, Entry { stamp, body });
        while shard.len() > self.per_shard_cap {
            let oldest = shard
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            match oldest {
                Some(k) => shard.remove(&k),
                None => break,
            };
        }
    }

    /// Drop every entry (hot-swap invalidation). Hit/miss counters are
    /// preserved — they count lookups, not contents.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("cache shard lock").clear();
        }
    }

    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self
                .shards
                .iter()
                .map(|s| s.lock().expect("cache shard lock").len())
                .sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_exact_bytes() {
        let c = ResponseCache::new(64);
        c.insert("k1".into(), "{\"x\":1}".into());
        assert_eq!(c.get("k1").as_deref(), Some("{\"x\":1}"));
        assert_eq!(c.get("k2"), None);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn evicts_least_recently_used_first() {
        // capacity 16 → one slot per shard; keys in the same shard compete
        let c = ResponseCache::new(16);
        // find two keys in the same shard
        let base = "a".to_string();
        let mut other = None;
        for i in 0..1000 {
            let k = format!("key{i}");
            if std::ptr::eq(c.shard_of(&k), c.shard_of(&base)) {
                other = Some(k);
                break;
            }
        }
        let other = other.expect("some key shares shard");
        c.insert(base.clone(), "old".into());
        c.insert(other.clone(), "new".into());
        assert_eq!(c.get(&base), None, "older entry evicted");
        assert_eq!(c.get(&other).as_deref(), Some("new"));
    }

    #[test]
    fn clear_empties_all_shards() {
        let c = ResponseCache::new(64);
        for i in 0..32 {
            c.insert(format!("k{i}"), "v".into());
        }
        c.clear();
        assert_eq!(c.stats().entries, 0);
    }
}
