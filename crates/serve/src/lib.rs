//! # zt-serve — the always-on tuning/prediction daemon
//!
//! ZeroTune's promise is zero-shot parallelism tuning *at deployment
//! time*; this crate stands the cost model up as a long-running HTTP/JSON
//! service so a stream-processing controller can ask "what would this
//! deployment cost?" and "how should I parallelize this plan?" without
//! ever touching the experiment binaries.
//!
//! The protocol is hand-rolled HTTP/1.1 over `std::net::TcpListener`
//! (the build environment has no crates.io access — and a five-endpoint
//! JSON service does not need more than [`http`]'s 200 lines):
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /predict` | What-if cost of one deployment (micro-batched `predict_batch`, LRU-cached) |
//! | `POST /tune`    | Full parallelism tuning via `zt_core::tune` (bounds pre-pass included) |
//! | `POST /explain` | Prediction + static bounds brackets + occlusion attribution |
//! | `POST /lint`    | `zt_core::diagnostics` over the shipped deployment |
//! | `POST /swap`    | Lint- and certification-guarded model hot-swap (422 + ZT6xx code on an uncertifiable candidate) |
//! | `GET /healthz`  | Liveness + serving counters + the active version's certificate summary |
//!
//! Plans travel as the sealed wire envelope of [`zt_query::PlanIr::to_json`]:
//! untrusted input is fully revalidated on receipt and the structural
//! fingerprint is cross-checked (diagnostic `ZT109` on mismatch).
//!
//! ## Determinism contract
//!
//! Same request body + same model version ⇒ byte-identical response
//! body. Ingredients: deterministic encode (`EncodeContext` over the
//! sealed IR), `predict_batch`'s contract that batching never changes
//! values, `tune`'s self-seeded RNG, and `serde_json`'s shortest
//! round-trip float rendering. The prediction cache stores whole rendered
//! bodies under the exact serialized feature vector (version-prefixed),
//! so a cache hit is *provably* byte-identical to the miss that populated
//! it — and telemetry counters (`serve.requests`, `serve.cache_hit`,
//! `serve.cache_miss`) account for every request exactly once.

#![deny(unsafe_code)]

pub mod api;
pub mod batch;
pub mod cache;
pub mod http;
pub mod registry;
pub mod server;

pub use api::{
    ApiError, ExplainResponse, HealthResponse, LintDiagnostic, LintResponse, PredictResponse,
    SwapResponse, TuneResponse,
};
pub use cache::CacheStats;
pub use http::{http_request, HttpResponse};
pub use registry::{ModelRegistry, ModelVersion, SwapRejection};
pub use server::{default_cluster, BoundServer, ServeConfig, Server, ServerHandle};
