//! `zt-serve` — boot the ZeroTune serving daemon.
//!
//! ```text
//! zt-serve [--addr HOST:PORT] [--model PATH] [--hidden N] [--seed N]
//!          [--workers N] [--cache N] [--max-body BYTES]
//! ```
//!
//! Without `--model` a deterministically initialized model
//! (`ModelConfig { hidden, seed }`) is served — untrained but stable
//! across runs, which is what the e2e harness and `zt-load` rely on.
//! Telemetry obeys `ZT_TELEMETRY=off|summary|trace` as everywhere else.

use zt_core::{ModelConfig, ZeroTuneModel};
use zt_serve::{ServeConfig, Server};

fn usage() -> ! {
    eprintln!(
        "usage: zt-serve [--addr HOST:PORT] [--model PATH] [--hidden N] [--seed N]\n\
         \u{20}                [--workers N] [--cache N] [--max-body BYTES]"
    );
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    match value.and_then(|v| v.parse::<T>().ok()) {
        Some(n) => n,
        None => {
            eprintln!("zt-serve: {flag} needs a numeric argument");
            usage()
        }
    }
}

fn main() {
    zt_telemetry::init_from_env();

    let mut cfg = ServeConfig::default();
    let mut model_cfg = ModelConfig::default();
    let mut model_path: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => cfg.addr = a,
                None => usage(),
            },
            "--model" => model_path = args.next().or_else(|| usage()),
            "--hidden" => model_cfg.hidden = parse_num("--hidden", args.next()),
            "--seed" => model_cfg.seed = parse_num("--seed", args.next()),
            "--workers" => cfg.workers = parse_num("--workers", args.next()),
            "--cache" => cfg.cache_capacity = parse_num("--cache", args.next()),
            "--max-body" => cfg.max_body_bytes = parse_num("--max-body", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("zt-serve: unknown flag `{other}`");
                usage()
            }
        }
    }

    let model = match &model_path {
        Some(path) => {
            let json = match std::fs::read_to_string(path) {
                Ok(j) => j,
                Err(e) => {
                    eprintln!("zt-serve: cannot read model `{path}`: {e}");
                    std::process::exit(1);
                }
            };
            match ZeroTuneModel::from_json(&json) {
                Ok(m) => m,
                Err(e) => {
                    eprintln!("zt-serve: model `{path}` does not parse: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => ZeroTuneModel::new(model_cfg),
    };

    let bound = match Server::bind(cfg, model) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("zt-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    match bound.local_addr() {
        Ok(addr) => println!("zt-serve listening on {addr}"),
        Err(e) => eprintln!("zt-serve: local_addr: {e}"),
    }
    bound.run();
}
