//! Cross-request micro-batching into `predict_batch`.
//!
//! Handler threads encode their request into a [`GraphEncoding`] and
//! submit it here; a single scorer thread drains whatever accumulated —
//! after a short coalescing window, up to `batch_max` graphs — and runs
//! **one** `predict_batch` call over the whole batch, amortizing the
//! per-call setup the same way the offline optimizer does over its
//! candidate set.
//!
//! # Determinism and hot-swap atomicity
//!
//! `predict_batch` is contractually `graphs.iter().map(predict)` — same
//! values, same order — so how requests happen to be grouped into
//! batches can never change a prediction: every response is bitwise what
//! the offline `predict_batch` returns for that encoding. The scorer
//! snapshots the model registry **once per batch**, so all requests in a
//! batch are scored by a single `(version, weights)` pair and the version
//! returned alongside each prediction is exactly the one that produced
//! it — a hot-swap can land between batches, never inside one.

use std::sync::mpsc;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use zt_core::{CostEstimator, CostPrediction, GraphEncoding};

use crate::registry::ModelRegistry;

/// A prediction plus the model version whose weights produced it.
pub type ScoreResult = (CostPrediction, u64);

struct Item {
    graph: GraphEncoding,
    tx: mpsc::Sender<ScoreResult>,
}

struct State {
    queue: Vec<Item>,
    shutdown: bool,
}

/// Shared submission queue + the scorer loop that drains it.
pub struct MicroBatcher {
    state: Mutex<State>,
    cv: Condvar,
    batch_max: usize,
    wait: Duration,
}

impl MicroBatcher {
    pub fn new(batch_max: usize, batch_wait_us: u64) -> Self {
        MicroBatcher {
            state: Mutex::new(State {
                queue: Vec::new(),
                shutdown: false,
            }),
            cv: Condvar::new(),
            batch_max: batch_max.max(1),
            wait: Duration::from_micros(batch_wait_us),
        }
    }

    /// Enqueue one encoding for scoring; the result arrives on the
    /// returned channel once the scorer processes the batch containing it.
    pub fn submit(&self, graph: GraphEncoding) -> mpsc::Receiver<ScoreResult> {
        let (tx, rx) = mpsc::channel();
        let mut st = self.state.lock().expect("batcher lock");
        st.queue.push(Item { graph, tx });
        self.cv.notify_all();
        rx
    }

    /// Tell the scorer to finish the remaining queue and exit. Called
    /// after the request workers have drained, so nothing new can arrive.
    pub fn shutdown(&self) {
        self.state.lock().expect("batcher lock").shutdown = true;
        self.cv.notify_all();
    }

    /// The scorer loop: runs until [`MicroBatcher::shutdown`] *and* an
    /// empty queue. One `predict_batch` per drained batch.
    pub fn run_scorer(&self, registry: &ModelRegistry) {
        loop {
            let batch: Vec<Item> = {
                let mut st = self.state.lock().expect("batcher lock");
                while st.queue.is_empty() && !st.shutdown {
                    st = self.cv.wait(st).expect("batcher lock");
                }
                if st.queue.is_empty() && st.shutdown {
                    return;
                }
                // Coalescing window: give concurrent handlers a beat to
                // pile on before the batch is cut.
                if st.queue.len() < self.batch_max && !st.shutdown {
                    let (guard, _timeout) =
                        self.cv.wait_timeout(st, self.wait).expect("batcher lock");
                    st = guard;
                }
                let take = st.queue.len().min(self.batch_max);
                st.queue.drain(..take).collect()
            };

            let snapshot = registry.current();
            let graphs: Vec<GraphEncoding> = batch.iter().map(|i| i.graph.clone()).collect();
            let _g = zt_telemetry::span("serve.batch");
            zt_telemetry::observe("serve.batch_size", batch.len() as f64);
            let preds = snapshot.model.predict_batch(&graphs);
            for (item, pred) in batch.into_iter().zip(preds) {
                // A dropped receiver just means the handler gave up
                // (client went away); the scorer carries on.
                let _ = item.tx.send((pred, snapshot.version));
            }
        }
    }
}
