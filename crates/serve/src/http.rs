//! Minimal HTTP/1.1 over `std::net`: just enough protocol for the
//! zt-serve request/response cycle, plus the blocking client used by the
//! test harness and the `zt-load` generator.
//!
//! Scope is deliberately narrow — `Connection: close` semantics (one
//! request per TCP connection), `Content-Length` framing only (no chunked
//! transfer), ASCII header names matched case-insensitively. Requests
//! whose head exceeds [`MAX_HEAD_BYTES`] or whose declared body exceeds
//! the server's cap are rejected before the body is read, so an oversized
//! upload costs the server one head-sized read, not the whole payload.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Cap on the request line + headers, generous for hand-written clients.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    pub headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// First header with the given name, ASCII case-insensitive.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read off the socket.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, headers, or framing.
    Bad(String),
    /// The declared `Content-Length` exceeds the server's body cap. The
    /// body was *not* read beyond the `buffered` bytes that arrived in
    /// the same reads as the head.
    TooLarge {
        declared: usize,
        max: usize,
        buffered: usize,
    },
    /// The socket failed or closed mid-request.
    Io(std::io::Error),
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Read and parse one request. `max_body` bounds the accepted
/// `Content-Length`; larger declarations return [`HttpError::TooLarge`]
/// with the body left unread on the socket.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut tmp = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::Bad("request head too large".into()));
        }
        let n = stream.read(&mut tmp).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Bad("connection closed mid-head".into()));
        }
        buf.extend_from_slice(&tmp[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Bad("non-UTF-8 request head".into()))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or_default().to_string();
    let path = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Bad(format!(
            "malformed request line `{request_line}`"
        )));
    }

    let mut headers = Vec::new();
    for line in lines {
        let Some((k, v)) = line.split_once(':') else {
            return Err(HttpError::Bad(format!("malformed header `{line}`")));
        };
        headers.push((k.trim().to_string(), v.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::Bad(format!("bad content-length `{v}`")))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::TooLarge {
            declared: content_length,
            max: max_body,
            buffered: buf.len() - head_end - 4,
        });
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut tmp).map_err(HttpError::Io)?;
        if n == 0 {
            return Err(HttpError::Bad("connection closed mid-body".into()));
        }
        body.extend_from_slice(&tmp[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Canonical reason phrase for the status codes zt-serve emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write a complete `Connection: close` JSON response in one syscall.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    let mut out = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len()
    );
    for (k, v) in extra_headers {
        out.push_str(k);
        out.push_str(": ");
        out.push_str(v);
        out.push_str("\r\n");
    }
    out.push_str("\r\n");
    out.push_str(body);
    stream.write_all(out.as_bytes())?;
    stream.flush()
}

/// A response as seen by the blocking client.
#[derive(Debug)]
pub struct HttpResponse {
    pub status: u16,
    pub headers: Vec<(String, String)>,
    pub body: String,
}

impl HttpResponse {
    /// First header with the given name, ASCII case-insensitive.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Blocking one-shot client: connect, send `method path`, read the full
/// `Connection: close` response. Used by the e2e tests and `zt-load`.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    stream.set_write_timeout(Some(Duration::from_secs(60)))?;
    let payload = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{payload}",
        payload.len()
    );
    stream.write_all(req.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

fn parse_response(raw: &[u8]) -> std::io::Result<HttpResponse> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let head_end = find_head_end(raw).ok_or_else(|| bad("response head not terminated"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("malformed status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((k, v)) = line.split_once(':') {
            headers.push((k.trim().to_string(), v.trim().to_string()));
        }
    }
    let body =
        String::from_utf8(raw[head_end + 4..].to_vec()).map_err(|_| bad("non-UTF-8 body"))?;
    Ok(HttpResponse {
        status,
        headers,
        body,
    })
}
