//! Versioned model registry with lint-guarded hot-swap.
//!
//! The registry owns the serving model behind an `Arc` swapped under an
//! `RwLock`. Handlers take a cheap snapshot ([`ModelRegistry::current`])
//! and keep using it for the rest of their request, so a swap never
//! drops, blocks, or mixes an in-flight request: every response is
//! computed — and labeled — with exactly one `(version, weights)` pair.
//!
//! Swaps are guarded by the ZT4xx model lints: a candidate with any
//! `Error`-severity finding (non-finite weights, exploded norms,
//! unfitted target normalization, …) is rejected wholesale and the old
//! version keeps serving.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use zt_core::{lint_model, Report, ZeroTuneModel};

/// One immutable installed model generation.
pub struct ModelVersion {
    /// Monotonic generation counter, starting at 1 for the boot model.
    pub version: u64,
    pub model: ZeroTuneModel,
}

/// Atomically swappable, lint-guarded model slot.
pub struct ModelRegistry {
    current: RwLock<Arc<ModelVersion>>,
    next_version: AtomicU64,
    swaps: AtomicU64,
}

impl ModelRegistry {
    /// Install `model` as version 1 without the swap lint gate: the boot
    /// model comes from the operator (CLI flag or fresh init), not from
    /// the network, and a daemon that refuses to boot is strictly worse
    /// than one that serves a warned-about model.
    pub fn new(model: ZeroTuneModel) -> Self {
        ModelRegistry {
            current: RwLock::new(Arc::new(ModelVersion { version: 1, model })),
            next_version: AtomicU64::new(2),
            swaps: AtomicU64::new(0),
        }
    }

    /// Snapshot the serving model. The returned `Arc` pins the version
    /// for as long as the caller holds it, independent of later swaps.
    pub fn current(&self) -> Arc<ModelVersion> {
        self.current.read().expect("model slot lock").clone()
    }

    /// The currently serving version number.
    pub fn version(&self) -> u64 {
        self.current().version
    }

    /// Number of successful hot-swaps since boot.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Validate `model` with the ZT4xx lints and, if clean of errors,
    /// install it as the next version. Returns the new version number,
    /// or the rendered lint report when the candidate is rejected (the
    /// previous version keeps serving untouched).
    pub fn swap(&self, model: ZeroTuneModel) -> Result<u64, String> {
        let report = Report::new(lint_model(&model));
        if report.has_errors() {
            return Err(format!("{report}"));
        }
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        *self.current.write().expect("model slot lock") = Arc::new(ModelVersion { version, model });
        self.swaps.fetch_add(1, Ordering::Relaxed);
        zt_telemetry::counter_add("serve.swap", 1);
        Ok(version)
    }

    /// [`ModelRegistry::swap`] from `ZeroTuneModel::to_json` text.
    pub fn swap_json(&self, json: &str) -> Result<u64, String> {
        let model =
            ZeroTuneModel::from_json(json).map_err(|e| format!("model does not parse: {e}"))?;
        self.swap(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zt_core::ModelConfig;

    #[test]
    fn swap_installs_next_version_and_pins_snapshots() {
        let reg = ModelRegistry::new(ZeroTuneModel::new(ModelConfig::default()));
        assert_eq!(reg.version(), 1);
        let pinned = reg.current();
        let v2 = reg
            .swap(ZeroTuneModel::new(ModelConfig {
                seed: 7,
                ..ModelConfig::default()
            }))
            .expect("clean model swaps");
        assert_eq!(v2, 2);
        assert_eq!(reg.version(), 2);
        // the old snapshot is still fully usable — no torn state
        assert_eq!(pinned.version, 1);
        assert_eq!(reg.swap_count(), 1);
    }

    #[test]
    fn swap_rejects_unparseable_json() {
        let reg = ModelRegistry::new(ZeroTuneModel::new(ModelConfig::default()));
        assert!(reg.swap_json("not a model").is_err());
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.swap_count(), 0);
    }
}
