//! Versioned model registry with lint-guarded hot-swap.
//!
//! The registry owns the serving model behind an `Arc` swapped under an
//! `RwLock`. Handlers take a cheap snapshot ([`ModelRegistry::current`])
//! and keep using it for the rest of their request, so a swap never
//! drops, blocks, or mixes an in-flight request: every response is
//! computed — and labeled — with exactly one `(version, weights)` pair.
//!
//! Swaps are guarded by two gates, both cheap and both static:
//!
//! 1. the ZT4xx model lints — a candidate with any `Error`-severity
//!    finding (non-finite weights, exploded norms, unfitted target
//!    normalization, …) is rejected wholesale;
//! 2. interval certification ([`zt_core::certify_report`]) — the
//!    candidate's weights are pushed through the domain-wide bound
//!    propagation, and any error-severity ZT6xx finding (exploded
//!    certified range, head disjoint from the label band, …) rejects the
//!    swap with that diagnostic's stable code.
//!
//! Either way the old version keeps serving, and every installed
//! [`ModelVersion`] carries its [`CertSummary`] for `/healthz`.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use zt_core::{certify_report, lint_model, CertSummary, Report, ZeroTuneModel};

/// One immutable installed model generation.
pub struct ModelVersion {
    /// Monotonic generation counter, starting at 1 for the boot model.
    pub version: u64,
    pub model: ZeroTuneModel,
    /// The version's interval-certification summary (computed at install
    /// time; echoed by `/healthz`).
    pub certificate: CertSummary,
}

/// A rejected swap: the stable machine code (`model_rejected` for ZT4xx
/// lint failures, the leading `ZT6xx`/`ZT407` code for certification
/// failures) plus the rendered diagnostic report.
#[derive(Debug)]
pub struct SwapRejection {
    pub code: String,
    pub report: String,
}

impl fmt::Display for SwapRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.report)
    }
}

/// Certify `model` and fold the result into the registry shape: the
/// summary (always produced, even for structurally refused models) plus
/// the rendered ZT6xx report.
fn certification(model: &ZeroTuneModel) -> (CertSummary, Report) {
    let (cert, report) = certify_report(model);
    let summary = cert.map_or_else(
        || CertSummary::failed(report.diagnostics.first().map_or("ZT407", |d| d.code)),
        |c| c.summary(),
    );
    (summary, report)
}

/// Atomically swappable, lint-guarded model slot.
pub struct ModelRegistry {
    current: RwLock<Arc<ModelVersion>>,
    next_version: AtomicU64,
    swaps: AtomicU64,
}

impl ModelRegistry {
    /// Install `model` as version 1 without the swap gates: the boot
    /// model comes from the operator (CLI flag or fresh init), not from
    /// the network, and a daemon that refuses to boot is strictly worse
    /// than one that serves a warned-about model. The certificate is
    /// still computed and exposed via `/healthz`, so an operator who
    /// boots an uncertifiable artifact can see it immediately.
    pub fn new(model: ZeroTuneModel) -> Self {
        let (certificate, _) = certification(&model);
        ModelRegistry {
            current: RwLock::new(Arc::new(ModelVersion {
                version: 1,
                model,
                certificate,
            })),
            next_version: AtomicU64::new(2),
            swaps: AtomicU64::new(0),
        }
    }

    /// Snapshot the serving model. The returned `Arc` pins the version
    /// for as long as the caller holds it, independent of later swaps.
    pub fn current(&self) -> Arc<ModelVersion> {
        self.current.read().expect("model slot lock").clone()
    }

    /// The currently serving version number.
    pub fn version(&self) -> u64 {
        self.current().version
    }

    /// Number of successful hot-swaps since boot.
    pub fn swap_count(&self) -> u64 {
        self.swaps.load(Ordering::Relaxed)
    }

    /// Validate `model` with the ZT4xx lints, then certify it by interval
    /// bound propagation; if clean of errors on both gates, install it as
    /// the next version (with its certificate summary). On rejection the
    /// previous version keeps serving untouched.
    pub fn swap(&self, model: ZeroTuneModel) -> Result<u64, SwapRejection> {
        let lint = Report::new(lint_model(&model));
        if lint.has_errors() {
            return Err(SwapRejection {
                code: "model_rejected".to_string(),
                report: format!("{lint}"),
            });
        }
        let (certificate, cert_report) = certification(&model);
        if !certificate.certified {
            zt_telemetry::counter_add("serve.swap_uncertified", 1);
            return Err(SwapRejection {
                code: certificate
                    .errors
                    .first()
                    .cloned()
                    .unwrap_or_else(|| "ZT601".to_string()),
                report: format!("{cert_report}"),
            });
        }
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        *self.current.write().expect("model slot lock") = Arc::new(ModelVersion {
            version,
            model,
            certificate,
        });
        self.swaps.fetch_add(1, Ordering::Relaxed);
        zt_telemetry::counter_add("serve.swap", 1);
        Ok(version)
    }

    /// [`ModelRegistry::swap`] from `ZeroTuneModel::to_json` text.
    pub fn swap_json(&self, json: &str) -> Result<u64, SwapRejection> {
        let model = ZeroTuneModel::from_json(json).map_err(|e| SwapRejection {
            code: "model_rejected".to_string(),
            report: format!("model does not parse: {e}"),
        })?;
        self.swap(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use zt_core::ModelConfig;

    #[test]
    fn swap_installs_next_version_and_pins_snapshots() {
        let reg = ModelRegistry::new(ZeroTuneModel::new(ModelConfig::default()));
        assert_eq!(reg.version(), 1);
        let pinned = reg.current();
        let v2 = reg
            .swap(ZeroTuneModel::new(ModelConfig {
                seed: 7,
                ..ModelConfig::default()
            }))
            .expect("clean model swaps");
        assert_eq!(v2, 2);
        assert_eq!(reg.version(), 2);
        // the old snapshot is still fully usable — no torn state
        assert_eq!(pinned.version, 1);
        assert_eq!(reg.swap_count(), 1);
    }

    #[test]
    fn swap_rejects_unparseable_json() {
        let reg = ModelRegistry::new(ZeroTuneModel::new(ModelConfig::default()));
        assert!(reg.swap_json("not a model").is_err());
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.swap_count(), 0);
    }

    #[test]
    fn boot_version_carries_a_clean_certificate() {
        let reg = ModelRegistry::new(ZeroTuneModel::new(ModelConfig::default()));
        let v = reg.current();
        assert!(v.certificate.certified);
        assert!(v.certificate.errors.is_empty());
        assert!(v.certificate.magnitude_log10.is_finite());
    }

    #[test]
    fn swap_rejects_uncertifiable_model_with_zt6xx_code() {
        let reg = ModelRegistry::new(ZeroTuneModel::new(ModelConfig::default()));
        let mut tampered = ZeroTuneModel::new(ModelConfig {
            seed: 9,
            ..ModelConfig::default()
        });
        let ids: Vec<_> = tampered.store.ids().collect();
        for id in ids {
            for v in &mut tampered.store.value_mut(id).data {
                *v *= 1e4;
            }
        }
        let rej = reg.swap(tampered).expect_err("inflated weights rejected");
        assert_eq!(rej.code, "ZT601", "report: {}", rej.report);
        assert!(rej.report.contains("ZT601"));
        // old version untouched, its certificate still clean
        assert_eq!(reg.version(), 1);
        assert_eq!(reg.swap_count(), 0);
        assert!(reg.current().certificate.certified);
    }
}
