//! Request/response JSON schema of the zt-serve endpoints.
//!
//! Requests are parsed by hand off the vendored-serde [`Value`] tree so
//! optional fields stay optional (the derive-generated deserializer
//! requires every field). Responses are `derive(Serialize)` structs
//! rendered with `serde_json::to_string`, which makes their bodies
//! deterministic: field order is declaration order and floats print in
//! shortest round-trip form, so two identical computations produce
//! byte-identical bodies (the property the prediction cache relies on).
//!
//! Every error response has the shape
//! `{"error":{"code":"...","message":"..."}}`; fingerprint-mismatch
//! rejections carry the stable diagnostic code `ZT109`.

use serde::{Deserialize, Serialize, Value};
use zt_dspsim::cluster::Cluster;
use zt_query::{LogicalPlan, ParallelQueryPlan, PlanIr, WireError};

/// A structured endpoint failure: HTTP status plus machine-readable code.
#[derive(Debug)]
pub struct ApiError {
    pub status: u16,
    pub code: String,
    pub message: String,
}

impl ApiError {
    pub fn new(status: u16, code: &str, message: impl Into<String>) -> Self {
        ApiError {
            status,
            code: code.to_string(),
            message: message.into(),
        }
    }

    /// Render the `{"error":{...}}` body.
    pub fn body(&self) -> String {
        let v = Value::Map(vec![(
            "error".to_string(),
            Value::Map(vec![
                ("code".to_string(), Value::Str(self.code.clone())),
                ("message".to_string(), Value::Str(self.message.clone())),
            ]),
        )]);
        serde_json::to_string(&v).expect("error body serializes")
    }
}

/// `POST /predict` 200 body.
#[derive(Serialize, Deserialize)]
pub struct PredictResponse {
    /// Registry generation whose weights produced this prediction.
    pub model_version: u64,
    pub latency_ms: f64,
    pub throughput: f64,
}

/// `POST /tune` 200 body: the offline `TuningOutcome`, labeled with the
/// model version that scored the candidates.
#[derive(Serialize, Deserialize)]
pub struct TuneResponse {
    pub model_version: u64,
    pub outcome: zt_core::TuningOutcome,
}

/// `POST /explain` 200 body: point prediction, static bounds brackets and
/// occlusion attribution, plus the rendered human-readable table.
#[derive(Serialize, Deserialize)]
pub struct ExplainResponse {
    pub model_version: u64,
    pub latency_ms: f64,
    pub throughput: f64,
    /// `[lo, hi]` static latency bracket (ms).
    pub latency_bounds: [f64; 2],
    /// `[lo, hi]` static throughput bracket (tuples/s).
    pub throughput_bounds: [f64; 2],
    /// Occlusion impact per feature group `[parallelism, operator, resource]`.
    pub latency_impact: [f64; 3],
    pub throughput_impact: [f64; 3],
    /// The `explain_bounds` per-operator interval table, pre-rendered.
    pub report: String,
}

/// One diagnostic in a `POST /lint` response.
#[derive(Serialize, Deserialize)]
pub struct LintDiagnostic {
    pub code: String,
    pub severity: String,
    pub message: String,
    pub anchor: Option<String>,
}

/// `POST /lint` 200 body.
#[derive(Serialize, Deserialize)]
pub struct LintResponse {
    pub errors: usize,
    pub warnings: usize,
    pub diagnostics: Vec<LintDiagnostic>,
}

/// `GET /healthz` 200 body.
#[derive(Serialize, Deserialize)]
pub struct HealthResponse {
    pub status: String,
    pub model_version: u64,
    pub requests: u64,
    pub swaps: u64,
    pub cache_entries: usize,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Interval-certification summary of the serving model version.
    pub certificate: zt_core::CertSummary,
}

/// `POST /swap` 200 body.
#[derive(Serialize, Deserialize)]
pub struct SwapResponse {
    pub model_version: u64,
}

/// Parse a request body as a JSON object.
pub fn parse_body(body: &[u8]) -> Result<Value, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::new(400, "bad_json", "request body is not UTF-8"))?;
    serde_json::from_str::<Value>(text)
        .map_err(|e| ApiError::new(400, "bad_json", format!("request body is not JSON: {e}")))
}

/// Extract and revalidate the mandatory wire plan (`"plan"` field, a
/// `PlanIr::to_json` envelope). Fingerprint mismatches map to the stable
/// `ZT109` diagnostic code; everything else the re-seal catches maps to
/// `invalid_plan`.
pub fn wire_plan(v: &Value) -> Result<(LogicalPlan, PlanIr), ApiError> {
    let plan_v = v
        .get("plan")
        .ok_or_else(|| ApiError::new(400, "missing_field", "request has no `plan` field"))?;
    let plan_json =
        serde_json::to_string(plan_v).map_err(|e| ApiError::new(400, "bad_json", e.to_string()))?;
    PlanIr::from_json(&plan_json).map_err(|e| match e {
        WireError::FingerprintMismatch { .. } | WireError::BadFingerprint(_) => {
            ApiError::new(400, "ZT109", e.to_string())
        }
        WireError::Json(_) | WireError::Plan(_) => {
            ApiError::new(400, "invalid_plan", e.to_string())
        }
    })
}

/// The optional `"cluster"` field, falling back to the server default.
pub fn cluster_of(v: &Value, default: &Cluster) -> Result<Cluster, ApiError> {
    match v.get("cluster") {
        None => Ok(default.clone()),
        Some(cv) => Deserialize::from_value(cv)
            .map_err(|e| ApiError::new(400, "bad_cluster", e.message().to_string())),
    }
}

/// The optional `"parallelism"` field, length-checked against the plan.
pub fn parallelism_of(v: &Value, num_ops: usize) -> Result<Option<Vec<u32>>, ApiError> {
    match v.get("parallelism") {
        None => Ok(None),
        Some(pv) => {
            let par: Vec<u32> = Deserialize::from_value(pv)
                .map_err(|e| ApiError::new(400, "bad_parallelism", e.message().to_string()))?;
            if par.len() != num_ops {
                return Err(ApiError::new(
                    400,
                    "bad_parallelism",
                    format!(
                        "parallelism has {} entries for {num_ops} operators",
                        par.len()
                    ),
                ));
            }
            Ok(Some(par))
        }
    }
}

/// Build the deployment a request describes: wire plan + optional
/// parallelism (default all-1) + Flink-style default partitioning.
pub fn deployment(v: &Value) -> Result<(ParallelQueryPlan, PlanIr), ApiError> {
    let (plan, ir) = wire_plan(v)?;
    let pqp = match parallelism_of(v, plan.num_ops())? {
        Some(par) => ParallelQueryPlan::with_parallelism(plan, par),
        None => ParallelQueryPlan::new(plan),
    };
    pqp.validate()
        .map_err(|e| ApiError::new(400, "invalid_deployment", e.to_string()))?;
    Ok((pqp, ir))
}

/// Optional numeric field helper (vendored serde_json numbers are `f64`).
pub fn num_field(v: &Value, key: &str) -> Result<Option<f64>, ApiError> {
    match v.get(key) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => x
            .as_f64()
            .map(Some)
            .ok_or_else(|| ApiError::new(400, "bad_field", format!("`{key}` must be a number"))),
    }
}
