//! Summary statistics shared by the simulator, the trainer, the
//! experiment harness and the telemetry histograms.
//!
//! Moved here from `zt_dspsim::metrics` (which re-exports this module)
//! so the telemetry registry can reuse it without a dependency cycle.
//!
//! ## Edge-case semantics (pinned)
//!
//! The statistics are defined explicitly on degenerate inputs instead of
//! relying on fold identities:
//!
//! | input          | `mean` | `min`/`max` | `percentile`/`median` | `std` |
//! |----------------|--------|-------------|-----------------------|-------|
//! | empty          | NaN    | NaN         | NaN                   | NaN   |
//! | single sample  | value  | value       | value (any `q`)       | 0.0   |
//! | constant series| value  | value       | value                 | 0.0 exactly |
//!
//! `percentile` clamps `q` to `[0, 100]`, so `p0 = min` and `p100 = max`
//! hold exactly, and the result is monotone in `q` (both properties are
//! proptested below). Samples must be NaN-free; `percentile` panics
//! otherwise.

/// Accumulator for a stream of f64 samples.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    values: Vec<f64>,
}

impl Summary {
    pub fn new() -> Self {
        Summary { values: Vec::new() }
    }

    pub fn add(&mut self, v: f64) {
        self.values.push(v);
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean; NaN on an empty summary.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Smallest sample; NaN on an empty summary.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample; NaN on an empty summary.
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Percentile via linear interpolation on the sorted sample
    /// (`q ∈ [0, 100]`, clamped). NaN on an empty summary; the single
    /// sample for every `q` on a one-element summary.
    pub fn percentile(&self, q: f64) -> f64 {
        percentile(&self.values, q)
    }

    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Sample standard deviation (n−1 denominator). NaN on an empty
    /// summary, 0.0 for a single sample, and **exactly** 0.0 for a
    /// constant series (guarded via `min == max`, so float summation
    /// round-off cannot leak a spurious nonzero spread).
    pub fn std(&self) -> f64 {
        match self.values.len() {
            0 => f64::NAN,
            1 => 0.0,
            _ => {
                if self.min() == self.max() {
                    return 0.0;
                }
                let m = self.mean();
                let var = self.values.iter().map(|v| (v - m) * (v - m)).sum::<f64>()
                    / (self.values.len() - 1) as f64;
                var.sqrt()
            }
        }
    }

    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Summary {
            values: iter.into_iter().collect(),
        }
    }
}

/// Percentile of a sample with linear interpolation (`q ∈ [0, 100]`,
/// clamped). Returns NaN on an empty slice; panics on NaN samples.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return f64::NAN;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let q = q.clamp(0.0, 100.0) / 100.0;
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let s: Summary = [1.0, 2.0, 3.0, 4.0, 5.0].into_iter().collect();
        assert_eq!(s.len(), 5);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert!((s.std() - (2.5f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 40.0);
        assert_eq!(percentile(&v, 50.0), 25.0);
        assert!((percentile(&v, 95.0) - 38.5).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_all_nan() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert!(s.mean().is_nan());
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
        assert!(s.percentile(50.0).is_nan());
        assert!(s.median().is_nan());
        assert!(s.std().is_nan());
    }

    #[test]
    fn single_value_is_every_quantile_with_zero_spread() {
        let s: Summary = [7.0].into_iter().collect();
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.min(), 7.0);
        assert_eq!(s.max(), 7.0);
        assert_eq!(s.median(), 7.0);
        assert_eq!(s.percentile(0.0), 7.0);
        assert_eq!(s.percentile(95.0), 7.0);
        assert_eq!(s.percentile(100.0), 7.0);
        assert_eq!(s.std(), 0.0);
    }

    #[test]
    fn constant_series_has_exactly_zero_std() {
        // 0.1 summed repeatedly does not round-trip: without the min==max
        // guard the naive two-pass formula reports a tiny nonzero std.
        let s: Summary = std::iter::repeat_n(0.1, 17).collect();
        assert_eq!(s.std(), 0.0);
        let s2: Summary = std::iter::repeat_n(-3.7e11, 5).collect();
        assert_eq!(s2.std(), 0.0);
    }

    #[test]
    fn percentile_clamps_out_of_range() {
        let v = [1.0, 2.0];
        assert_eq!(percentile(&v, -5.0), 1.0);
        assert_eq!(percentile(&v, 150.0), 2.0);
    }

    /// Deterministic pseudo-random f64 in [-1e3, 1e3) from a splitmix64
    /// step — proptest's vendored subset has no Vec strategies, so test
    /// vectors are derived from a sampled (seed, len) pair instead.
    fn mix_value(seed: u64, i: u64) -> f64 {
        let mut z = seed.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64 - 0.5) * 2e3
    }

    fn mix_summary(seed: u64, len: usize) -> Summary {
        (0..len as u64).map(|i| mix_value(seed, i)).collect()
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn percentile_is_monotone_in_q(seed in 0u64..1024, len in 1usize..48,
                                           q1 in 0.0f64..100.0, q2 in 0.0f64..100.0) {
                let s = mix_summary(seed, len);
                let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
                let (plo, phi) = (s.percentile(lo), s.percentile(hi));
                // tiny tolerance for interpolation round-off between segments
                prop_assert!(plo <= phi + 1e-9 * phi.abs().max(1.0),
                    "p({lo}) = {plo} > p({hi}) = {phi}");
            }

            #[test]
            fn p0_is_min_and_p100_is_max(seed in 0u64..1024, len in 1usize..48) {
                let s = mix_summary(seed, len);
                prop_assert_eq!(s.percentile(0.0), s.min());
                prop_assert_eq!(s.percentile(100.0), s.max());
            }

            #[test]
            fn constant_series_std_is_zero(seed in 0u64..1024, len in 1usize..48) {
                let v = mix_value(seed, 0);
                let s: Summary = std::iter::repeat_n(v, len).collect();
                prop_assert_eq!(s.std(), 0.0);
            }

            #[test]
            fn percentile_lies_between_min_and_max(seed in 0u64..1024, len in 1usize..48,
                                                   q in 0.0f64..100.0) {
                let s = mix_summary(seed, len);
                let p = s.percentile(q);
                prop_assert!(s.min() <= p && p <= s.max());
            }
        }
    }
}
