//! Human-readable end-of-run telemetry report.
//!
//! Three fixed-width tables — counters, histograms, span durations —
//! with column widths computed over the actual content, so every row of
//! a table has the same length regardless of how many samples (zero,
//! one, many) a histogram holds. Statistics that are undefined on the
//! input (NaN on an empty histogram) render as `-`.

use crate::{Snapshot, Summary};

/// Format a statistic, mapping NaN (empty-summary semantics) to `-`.
fn stat(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.3e}")
    } else {
        format!("{v:.3}")
    }
}

/// Render rows as a fixed-width table: every emitted line (header
/// included) is padded to identical length.
fn table(title: &str, header: &[&str], rows: &[Vec<String>], out: &mut String) {
    if rows.is_empty() {
        return;
    }
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    out.push_str(&format!("-- {title} --\n"));
    let emit = |cells: &[String], out: &mut String| {
        let line: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if i == 0 {
                    format!("{c:<width$}", width = widths[0])
                } else {
                    format!("{c:>width$}", width = widths[i])
                }
            })
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|h| (*h).to_string()).collect();
    assert_eq!(header_cells.len(), cols);
    emit(&header_cells, out);
    for row in rows {
        emit(row, out);
    }
}

fn hist_row(name: &str, s: &Summary) -> Vec<String> {
    vec![
        name.to_string(),
        s.len().to_string(),
        stat(s.mean()),
        stat(s.median()),
        stat(s.percentile(95.0)),
        stat(s.min()),
        stat(s.max()),
    ]
}

/// Render the whole report.
pub fn render(snap: &Snapshot) -> String {
    let mut out = String::from("== telemetry summary ==\n");
    if snap.is_empty() {
        out.push_str("(nothing recorded)\n");
        return out;
    }

    let counter_rows: Vec<Vec<String>> = snap
        .counters
        .iter()
        .map(|(k, v)| vec![k.clone(), v.to_string()])
        .collect();
    table("counters", &["counter", "value"], &counter_rows, &mut out);

    let hist_rows: Vec<Vec<String>> = snap
        .histograms
        .iter()
        .map(|(k, s)| hist_row(k, s))
        .collect();
    table(
        "histograms",
        &["histogram", "n", "mean", "p50", "p95", "min", "max"],
        &hist_rows,
        &mut out,
    );

    let span_rows: Vec<Vec<String>> = snap
        .span_durations
        .iter()
        .map(|(k, s)| {
            vec![
                k.clone(),
                s.len().to_string(),
                stat(s.values().iter().sum::<f64>()),
                stat(s.mean()),
                stat(s.max()),
            ]
        })
        .collect();
    table(
        "spans (ms)",
        &["span", "calls", "total", "mean", "max"],
        &span_rows,
        &mut out,
    );

    if snap.dropped_events > 0 {
        out.push_str(&format!(
            "(warning: {} trace events dropped at the in-memory cap)\n",
            snap.dropped_events
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn snap_with_hists(hists: Vec<(&str, Summary)>) -> Snapshot {
        Snapshot {
            histograms: hists
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect::<BTreeMap<_, _>>(),
            ..Snapshot::default()
        }
    }

    /// All lines of a table block (from its `--` header to the next blank
    /// or end) must have equal length.
    fn assert_stable_widths(report: &str, section: &str) {
        let mut lines = report.lines();
        lines
            .find(|l| l.starts_with(&format!("-- {section}")))
            .unwrap_or_else(|| panic!("section {section} missing in:\n{report}"));
        let rows: Vec<&str> = lines.take_while(|l| !l.starts_with("--")).collect();
        assert!(rows.len() >= 2, "section {section} has no rows");
        let lens: Vec<usize> = rows.iter().map(|l| l.len()).collect();
        assert!(
            lens.windows(2).all(|w| w[0] == w[1]),
            "ragged columns in {section}: {lens:?}\n{report}"
        );
    }

    #[test]
    fn empty_snapshot_renders_placeholder() {
        let r = render(&Snapshot::default());
        assert!(r.contains("nothing recorded"));
    }

    #[test]
    fn column_widths_are_stable_across_sample_counts() {
        // empty, one-sample and many-sample histograms in one table
        let many: Summary = (0..100).map(|i| f64::from(i) * 1234.5).collect();
        let snap = snap_with_hists(vec![
            ("empty.hist", Summary::new()),
            ("one.hist", [42.0].into_iter().collect()),
            ("many.hist", many),
        ]);
        let r = render(&snap);
        assert_stable_widths(&r, "histograms");
        // empty histogram renders '-' for undefined stats, not NaN
        assert!(!r.contains("NaN"), "NaN leaked into report:\n{r}");
        let empty_line = r.lines().find(|l| l.starts_with("empty.hist")).unwrap();
        assert!(empty_line.contains('-'));
    }

    #[test]
    fn counters_and_spans_align_too() {
        let mut durations = BTreeMap::new();
        durations.insert("a/b".to_string(), [0.5, 1.5].into_iter().collect());
        durations.insert(
            "a-much-longer/span/path".to_string(),
            [100.0].into_iter().collect::<Summary>(),
        );
        let snap = Snapshot {
            counters: [
                ("x".to_string(), 1u64),
                ("a.very.long.counter.name".to_string(), 123_456u64),
            ]
            .into_iter()
            .collect(),
            span_durations: durations,
            ..Snapshot::default()
        };
        let r = render(&snap);
        assert_stable_widths(&r, "counters");
        assert_stable_widths(&r, "spans");
    }
}
