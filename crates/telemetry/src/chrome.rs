//! Chrome-trace-format exporter.
//!
//! Produces the JSON-object flavor of the [Trace Event Format] — a
//! `traceEvents` array of duration (`B`/`E`) and counter (`C`) events —
//! which loads directly in `chrome://tracing` and
//! <https://ui.perfetto.dev>.
//!
//! The vendored serde shim has no field-rename attribute and its `Value`
//! tree does not implement `Serialize` itself, so the event structs
//! (de)serialize manually into `serde::Value` maps; that also keeps the
//! short lowercase keys (`ph`, `ts`, `pid`, `tid`) the format requires.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use serde::{field, DeError, Deserialize, Serialize, Value};

use crate::Snapshot;
#[cfg(test)]
use crate::TraceEvent;

/// Argument value attached to an event's `args` object.
#[derive(Clone, Debug, PartialEq)]
pub enum ArgValue {
    Str(String),
    Num(f64),
}

impl Serialize for ArgValue {
    fn to_value(&self) -> Value {
        match self {
            ArgValue::Str(s) => Value::Str(s.clone()),
            ArgValue::Num(n) => Value::Num(*n),
        }
    }
}

impl Deserialize for ArgValue {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(ArgValue::Str(s.clone())),
            Value::Num(n) => Ok(ArgValue::Num(*n)),
            _ => Err(DeError::custom("expected string or number arg")),
        }
    }
}

/// One Chrome trace event (`ph` ∈ {`B`, `E`, `C`}).
#[derive(Clone, Debug, PartialEq)]
pub struct ChromeEvent {
    pub name: String,
    /// Event category (always `"zt"` here).
    pub cat: String,
    /// Phase: `B` begin, `E` end, `C` counter.
    pub ph: char,
    /// Timestamp in microseconds since the trace epoch.
    pub ts: u64,
    pub pid: u64,
    pub tid: u64,
    /// `args` object entries; empty means the key is omitted.
    pub args: Vec<(String, ArgValue)>,
}

impl Serialize for ChromeEvent {
    fn to_value(&self) -> Value {
        let mut m = vec![
            ("name".to_string(), Value::Str(self.name.clone())),
            ("cat".to_string(), Value::Str(self.cat.clone())),
            ("ph".to_string(), Value::Str(self.ph.to_string())),
            ("ts".to_string(), Value::Num(self.ts as f64)),
            ("pid".to_string(), Value::Num(self.pid as f64)),
            ("tid".to_string(), Value::Num(self.tid as f64)),
        ];
        if !self.args.is_empty() {
            m.push((
                "args".to_string(),
                Value::Map(
                    self.args
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_value()))
                        .collect(),
                ),
            ));
        }
        Value::Map(m)
    }
}

impl Deserialize for ChromeEvent {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map().ok_or_else(|| DeError::custom("expected map"))?;
        let ph: String = field(m, "ph")?;
        let mut args = Vec::new();
        if let Some(a) = v.get("args") {
            for (k, av) in a
                .as_map()
                .ok_or_else(|| DeError::custom("args must be a map"))?
            {
                args.push((k.clone(), ArgValue::from_value(av)?));
            }
        }
        Ok(ChromeEvent {
            name: field(m, "name")?,
            cat: field(m, "cat")?,
            ph: ph
                .chars()
                .next()
                .ok_or_else(|| DeError::custom("empty ph"))?,
            ts: field(m, "ts")?,
            pid: field(m, "pid")?,
            tid: field(m, "tid")?,
            args,
        })
    }
}

/// A whole trace: the `traceEvents` wrapper object.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChromeTrace {
    pub events: Vec<ChromeEvent>,
}

impl Serialize for ChromeTrace {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "traceEvents".to_string(),
                Value::Seq(self.events.iter().map(Serialize::to_value).collect()),
            ),
            ("displayTimeUnit".to_string(), Value::Str("ms".to_string())),
        ])
    }
}

impl Deserialize for ChromeTrace {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seq = v
            .get("traceEvents")
            .and_then(Value::as_seq)
            .ok_or_else(|| DeError::custom("missing traceEvents array"))?;
        Ok(ChromeTrace {
            events: seq
                .iter()
                .map(ChromeEvent::from_value)
                .collect::<Result<_, _>>()?,
        })
    }
}

impl ChromeTrace {
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("chrome trace serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

impl Snapshot {
    /// Build the Chrome trace: begin/end events in recorded order (end
    /// events get their span's name back by replaying each thread's
    /// stack), plus one final `C` event per counter.
    pub fn chrome_trace(&self) -> ChromeTrace {
        let mut stacks: std::collections::BTreeMap<usize, Vec<&str>> =
            std::collections::BTreeMap::new();
        let mut events = Vec::with_capacity(self.events.len() + self.counters.len());
        let mut max_ts = 0u64;
        for e in &self.events {
            max_ts = max_ts.max(e.ts_us);
            let stack = stacks.entry(e.tid).or_default();
            let name = if e.begin {
                stack.push(e.name);
                e.name
            } else {
                // An end without a begin (reset mid-span) is dropped.
                match stack.pop() {
                    Some(n) => n,
                    None => continue,
                }
            };
            let args = match (&e.arg, e.begin) {
                (Some(a), true) => vec![("arg".to_string(), ArgValue::Str(a.clone()))],
                _ => Vec::new(),
            };
            events.push(ChromeEvent {
                name: name.to_string(),
                cat: "zt".to_string(),
                ph: if e.begin { 'B' } else { 'E' },
                ts: e.ts_us,
                pid: 1,
                tid: e.tid as u64,
                args,
            });
        }
        // Dangling begins (spans still open at snapshot time) get a
        // closing end at the trace horizon so viewers can render them.
        for (tid, stack) in &stacks {
            for name in stack.iter().rev() {
                events.push(ChromeEvent {
                    name: (*name).to_string(),
                    cat: "zt".to_string(),
                    ph: 'E',
                    ts: max_ts,
                    pid: 1,
                    tid: *tid as u64,
                    args: Vec::new(),
                });
            }
        }
        for (name, value) in &self.counters {
            events.push(ChromeEvent {
                name: name.clone(),
                cat: "zt".to_string(),
                ph: 'C',
                ts: max_ts,
                pid: 1,
                tid: 0,
                args: vec![("value".to_string(), ArgValue::Num(*value as f64))],
            });
        }
        ChromeTrace { events }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        // Two threads: tid 0 nests a/b, tid 1 runs c; one counter.
        let ev = |name: &'static str, tid: usize, ts_us: u64, begin: bool| TraceEvent {
            name,
            arg: (name == "b" && begin).then(|| "42".to_string()),
            tid,
            ts_us,
            begin,
        };
        Snapshot {
            events: vec![
                ev("a", 0, 10, true),
                ev("c", 1, 12, true),
                ev("b", 0, 20, true),
                ev("", 0, 30, false),
                ev("", 1, 35, false),
                ev("", 0, 40, false),
            ],
            counters: [("n.things".to_string(), 7u64)].into_iter().collect(),
            ..Snapshot::default()
        }
    }

    #[test]
    fn json_round_trips_and_is_non_empty() {
        let trace = sample_snapshot().chrome_trace();
        let json = trace.to_json();
        assert!(json.contains("traceEvents"));
        let back = ChromeTrace::from_json(&json).expect("round trip");
        assert_eq!(back, trace);
        assert!(!back.events.is_empty());
    }

    #[test]
    fn ts_is_monotone_per_thread() {
        let trace = sample_snapshot().chrome_trace();
        let mut last: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for e in trace.events.iter().filter(|e| e.ph != 'C') {
            let prev = last.insert(e.tid, e.ts);
            if let Some(p) = prev {
                assert!(e.ts >= p, "ts went backwards on tid {}", e.tid);
            }
        }
    }

    #[test]
    fn every_begin_has_a_matching_end() {
        let trace = sample_snapshot().chrome_trace();
        let mut stacks: std::collections::BTreeMap<u64, Vec<String>> =
            std::collections::BTreeMap::new();
        for e in &trace.events {
            match e.ph {
                'B' => stacks.entry(e.tid).or_default().push(e.name.clone()),
                'E' => {
                    let open = stacks.get_mut(&e.tid).and_then(Vec::pop);
                    assert_eq!(open.as_deref(), Some(e.name.as_str()), "unbalanced E");
                }
                _ => {}
            }
        }
        assert!(stacks.values().all(Vec::is_empty), "unclosed B events");
    }

    #[test]
    fn dangling_begins_are_closed_at_the_horizon() {
        let mut snap = sample_snapshot();
        snap.events.truncate(3); // three begins, no ends
        let trace = snap.chrome_trace();
        let ends: Vec<_> = trace.events.iter().filter(|e| e.ph == 'E').collect();
        assert_eq!(ends.len(), 3);
        assert!(ends.iter().all(|e| e.ts == 20));
    }

    #[test]
    fn counter_events_carry_values() {
        let trace = sample_snapshot().chrome_trace();
        let c = trace
            .events
            .iter()
            .find(|e| e.ph == 'C')
            .expect("counter event");
        assert_eq!(c.name, "n.things");
        assert_eq!(c.args, vec![("value".to_string(), ArgValue::Num(7.0))]);
    }

    #[test]
    fn end_without_begin_is_dropped() {
        let snap = Snapshot {
            events: vec![TraceEvent {
                name: "",
                arg: None,
                tid: 0,
                ts_us: 5,
                begin: false,
            }],
            ..Snapshot::default()
        };
        assert!(snap.chrome_trace().events.is_empty());
    }
}
