//! # zt-telemetry — runtime observability for the ZeroTune stack
//!
//! A lightweight, dependency-free (vendored serde/serde_json only)
//! telemetry layer:
//!
//! * **Spans** — RAII guards ([`span`] / [`span_arg`]) recording
//!   wall-clock timing into a process-global, thread-safe [`Registry`].
//!   Guards are cheap enough to drop into hot paths: when telemetry is
//!   off they cost one relaxed atomic load.
//! * **Counters** ([`counter_add`]) and **histograms** ([`observe`]) for
//!   domain metrics — tuples simulated, cache hits/misses, candidates
//!   enumerated, epochs, gradient norms, per-batch inference latency.
//! * **Exporters** — a human-readable end-of-run report
//!   ([`Snapshot::summary_report`]) and Chrome-trace-format JSON
//!   ([`Snapshot::chrome_trace_json`], loadable in `chrome://tracing` or
//!   <https://ui.perfetto.dev>).
//!
//! ## Modes
//!
//! The global mode comes from `ZT_TELEMETRY` (`off` | `summary` |
//! `trace`, default `off`) on first use, or [`set_mode`] /
//! [`init_from_env`] explicitly:
//!
//! * **Off** — every call is a near-no-op; no allocation, no locking, no
//!   clock reads. Datasets/models are bitwise identical to a build that
//!   never calls into telemetry (the RNG streams are untouched).
//! * **Summary** — counters, histograms and per-span duration summaries
//!   accumulate; no event log.
//! * **Trace** — additionally appends begin/end events for the Chrome
//!   trace exporter.
//!
//! ## Determinism
//!
//! Span *names*, span *tree structure* and counter *values* are
//! deterministic functions of the work performed — independent of worker
//! count and thread interleaving (shard spans started on worker threads
//! are roots of their thread's stack, so the canonical form is the same
//! at 1 or 8 workers). Durations and timestamps are of course wall-clock
//! and excluded from [`Snapshot::canonical`], which is what the
//! golden-trace tests compare.
//!
//! The registry is process-global; tests that assert on it serialize
//! behind a mutex and call [`reset`] at quiescent points (no live spans).

#![deny(unsafe_code)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

pub mod chrome;
pub mod report;
pub mod summary;

pub use chrome::{ChromeEvent, ChromeTrace};
pub use summary::{percentile, Summary};

/// Telemetry collection level.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Near-no-op guards; nothing is recorded.
    Off,
    /// Counters, histograms and span-duration summaries.
    Summary,
    /// Everything, plus the begin/end event log for Chrome traces.
    Trace,
}

impl Mode {
    /// Parse `ZT_TELEMETRY`-style values; anything unrecognized is `Off`.
    pub fn parse(s: &str) -> Mode {
        match s.trim().to_ascii_lowercase().as_str() {
            "summary" | "report" | "1" => Mode::Summary,
            "trace" | "full" | "2" => Mode::Trace,
            _ => Mode::Off,
        }
    }
}

const MODE_OFF: u8 = 0;
const MODE_SUMMARY: u8 = 1;
const MODE_TRACE: u8 = 2;
const MODE_UNINIT: u8 = 255;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

/// Event-log cap: a runaway loop stops appending (and counts drops)
/// instead of exhausting memory. 1M events ≈ tens of MB.
const MAX_EVENTS: usize = 1 << 20;
/// Per-histogram sample cap, same rationale.
const MAX_HIST_SAMPLES: usize = 1 << 20;

static DROPPED_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Current mode; reads `ZT_TELEMETRY` on first use.
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        MODE_OFF => Mode::Off,
        MODE_SUMMARY => Mode::Summary,
        MODE_TRACE => Mode::Trace,
        _ => {
            let m = std::env::var("ZT_TELEMETRY").map_or(Mode::Off, |v| Mode::parse(&v));
            set_mode(m);
            m
        }
    }
}

/// Set the global mode explicitly (tests, CLI plumbing).
pub fn set_mode(m: Mode) {
    let v = match m {
        Mode::Off => MODE_OFF,
        Mode::Summary => MODE_SUMMARY,
        Mode::Trace => MODE_TRACE,
    };
    MODE.store(v, Ordering::Relaxed);
}

/// Re-read `ZT_TELEMETRY` even if the mode was already initialized —
/// call after `std::env::set_var` in CLI front-ends.
pub fn init_from_env() {
    let m = std::env::var("ZT_TELEMETRY").map_or(Mode::Off, |v| Mode::parse(&v));
    set_mode(m);
}

/// True unless the mode is [`Mode::Off`].
pub fn enabled() -> bool {
    mode() != Mode::Off
}

/// One begin/end record in the trace event log.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    pub name: &'static str,
    /// Optional argument attached to a begin event (e.g. a shard index).
    pub arg: Option<String>,
    /// Dense per-thread id (0 = first thread to record).
    pub tid: usize,
    /// Microseconds since the registry epoch.
    pub ts_us: u64,
    /// `true` for begin (`B`), `false` for end (`E`).
    pub begin: bool,
}

/// Process-global telemetry sink.
struct Registry {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    hists: Mutex<BTreeMap<&'static str, Summary>>,
    /// Wall-clock per span *path* (e.g. `tune/tune.score`), in ms.
    span_durations: Mutex<BTreeMap<String, Summary>>,
    next_tid: AtomicUsize,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        epoch: Instant::now(),
        events: Mutex::new(Vec::new()),
        counters: Mutex::new(BTreeMap::new()),
        hists: Mutex::new(BTreeMap::new()),
        span_durations: Mutex::new(BTreeMap::new()),
        next_tid: AtomicUsize::new(0),
    })
}

thread_local! {
    /// Names of the spans currently open on this thread (innermost last).
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Dense thread id, assigned on first telemetry activity.
    static TID: RefCell<Option<usize>> = const { RefCell::new(None) };
}

fn thread_id() -> usize {
    TID.with(|t| {
        let mut t = t.borrow_mut();
        *t.get_or_insert_with(|| registry().next_tid.fetch_add(1, Ordering::Relaxed))
    })
}

fn push_event(name: &'static str, arg: Option<String>, begin: bool) {
    let reg = registry();
    let ts_us = u64::try_from(reg.epoch.elapsed().as_micros()).unwrap_or(u64::MAX);
    let tid = thread_id();
    let mut events = reg.events.lock().expect("telemetry events lock");
    if events.len() >= MAX_EVENTS {
        DROPPED_EVENTS.fetch_add(1, Ordering::Relaxed);
        return;
    }
    events.push(TraceEvent {
        name,
        arg,
        tid,
        ts_us,
        begin,
    });
}

/// RAII span: created by [`span`] / [`span_arg`], records its wall-clock
/// duration (and begin/end trace events in [`Mode::Trace`]) on drop.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct SpanGuard {
    active: Option<ActiveSpan>,
}

struct ActiveSpan {
    path: String,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.active.take() else {
            return;
        };
        let elapsed_ms = active.start.elapsed().as_secs_f64() * 1e3;
        let reg = registry();
        reg.span_durations
            .lock()
            .expect("telemetry span lock")
            .entry(active.path)
            .or_default()
            .add(elapsed_ms);
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        if mode() == Mode::Trace {
            // `name` is irrelevant for an end event; reuse is fine.
            push_event("", None, false);
        }
    }
}

/// Open a span named `name` over the enclosing scope. Off mode returns an
/// inert guard (one atomic load, no allocation).
pub fn span(name: &'static str) -> SpanGuard {
    span_impl(name, None)
}

/// Like [`span`], but attaches an argument (shard index, epoch number…)
/// to the begin event. The closure only runs when telemetry is enabled,
/// so formatting costs nothing in Off mode.
pub fn span_arg(name: &'static str, arg: impl FnOnce() -> String) -> SpanGuard {
    if mode() == Mode::Off {
        return SpanGuard { active: None };
    }
    span_impl_enabled(name, Some(arg()))
}

fn span_impl(name: &'static str, arg: Option<String>) -> SpanGuard {
    if mode() == Mode::Off {
        return SpanGuard { active: None };
    }
    span_impl_enabled(name, arg)
}

fn span_impl_enabled(name: &'static str, arg: Option<String>) -> SpanGuard {
    let path = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        stack.push(name);
        stack.join("/")
    });
    if mode() == Mode::Trace {
        push_event(name, arg, true);
    }
    SpanGuard {
        active: Some(ActiveSpan {
            path,
            start: Instant::now(),
        }),
    }
}

/// Add `delta` to the named counter. No-op in Off mode.
pub fn counter_add(name: &'static str, delta: u64) {
    if mode() == Mode::Off {
        return;
    }
    *registry()
        .counters
        .lock()
        .expect("telemetry counters lock")
        .entry(name)
        .or_insert(0) += delta;
}

/// Record one sample into the named histogram. No-op in Off mode.
pub fn observe(name: &'static str, value: f64) {
    if mode() == Mode::Off {
        return;
    }
    let mut hists = registry().hists.lock().expect("telemetry hists lock");
    let h = hists.entry(name).or_default();
    if h.len() < MAX_HIST_SAMPLES {
        h.add(value);
    }
}

/// Clear all recorded data (events, counters, histograms, durations).
/// Call at a quiescent point — open spans keep their begin events only
/// until the reset, so resetting mid-span orphans them.
pub fn reset() {
    let reg = registry();
    reg.events.lock().expect("telemetry events lock").clear();
    reg.counters
        .lock()
        .expect("telemetry counters lock")
        .clear();
    reg.hists.lock().expect("telemetry hists lock").clear();
    reg.span_durations
        .lock()
        .expect("telemetry span lock")
        .clear();
    DROPPED_EVENTS.store(0, Ordering::Relaxed);
}

/// Immutable copy of everything recorded so far.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Begin/end log in append order ([`Mode::Trace`] only).
    pub events: Vec<TraceEvent>,
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, Summary>,
    /// Wall-clock summaries per span path, in milliseconds.
    pub span_durations: BTreeMap<String, Summary>,
    /// Events discarded after the in-memory cap was hit.
    pub dropped_events: u64,
}

/// Snapshot the global registry.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    Snapshot {
        events: reg.events.lock().expect("telemetry events lock").clone(),
        counters: reg
            .counters
            .lock()
            .expect("telemetry counters lock")
            .iter()
            .map(|(k, v)| ((*k).to_string(), *v))
            .collect(),
        histograms: reg
            .hists
            .lock()
            .expect("telemetry hists lock")
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect(),
        span_durations: reg
            .span_durations
            .lock()
            .expect("telemetry span lock")
            .clone(),
        dropped_events: DROPPED_EVENTS.load(Ordering::Relaxed),
    }
}

impl Snapshot {
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
            && self.counters.is_empty()
            && self.histograms.is_empty()
            && self.span_durations.is_empty()
    }

    /// Every span instance as a `/`-joined path (begin events replayed
    /// per thread), sorted. A begin argument shows as a `[arg]` suffix on
    /// its own path segment.
    pub fn span_paths(&self) -> Vec<String> {
        let mut stacks: BTreeMap<usize, Vec<&str>> = BTreeMap::new();
        let mut paths = Vec::new();
        for e in &self.events {
            let stack = stacks.entry(e.tid).or_default();
            if e.begin {
                stack.push(e.name);
                let mut p = stack.join("/");
                if let Some(a) = &e.arg {
                    p.push_str(&format!("[{a}]"));
                }
                paths.push(p);
            } else {
                stack.pop();
            }
        }
        paths.sort();
        paths
    }

    /// Deterministic text form for golden-trace comparisons: sorted span
    /// paths, counter values, and histogram names with sample *counts* —
    /// everything except wall-clock durations/timestamps. Counters that
    /// *are* durations (`_ms`-suffixed names, e.g. `tune.bound_ms`)
    /// appear by name only, their wall-clock value elided.
    pub fn canonical(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for p in self.span_paths() {
            let _ = writeln!(out, "span {p}");
        }
        for (k, v) in &self.counters {
            if k.ends_with("_ms") {
                let _ = writeln!(out, "counter {k}");
                continue;
            }
            let _ = writeln!(out, "counter {k} = {v}");
        }
        for (k, s) in &self.histograms {
            let _ = writeln!(out, "hist {k} n={}", s.len());
        }
        out
    }

    /// Chrome-trace JSON (see [`chrome`]).
    pub fn chrome_trace_json(&self) -> String {
        self.chrome_trace().to_json()
    }

    /// Human-readable end-of-run report (see [`report`]).
    pub fn summary_report(&self) -> String {
        report::render(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry is process-global; tests touching it serialize here.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(Mode::parse("off"), Mode::Off);
        assert_eq!(Mode::parse(""), Mode::Off);
        assert_eq!(Mode::parse("nonsense"), Mode::Off);
        assert_eq!(Mode::parse("summary"), Mode::Summary);
        assert_eq!(Mode::parse("TRACE"), Mode::Trace);
        assert_eq!(Mode::parse(" trace "), Mode::Trace);
    }

    #[test]
    fn off_mode_records_nothing() {
        let _l = lock();
        set_mode(Mode::Off);
        reset();
        {
            let _s = span("off.span");
            counter_add("off.counter", 3);
            observe("off.hist", 1.0);
        }
        assert!(snapshot().is_empty());
    }

    #[test]
    fn summary_mode_skips_the_event_log() {
        let _l = lock();
        set_mode(Mode::Summary);
        reset();
        {
            let _s = span("sum.span");
            counter_add("sum.counter", 2);
        }
        let snap = snapshot();
        set_mode(Mode::Off);
        assert!(snap.events.is_empty());
        assert_eq!(snap.counters.get("sum.counter"), Some(&2));
        assert_eq!(snap.span_durations["sum.span"].len(), 1);
    }

    #[test]
    fn nested_spans_build_slash_paths() {
        let _l = lock();
        set_mode(Mode::Trace);
        reset();
        {
            let _a = span("outer");
            {
                let _b = span_arg("inner", || "7".to_string());
            }
            {
                let _c = span("inner2");
            }
        }
        let snap = snapshot();
        set_mode(Mode::Off);
        assert_eq!(
            snap.span_paths(),
            vec![
                "outer".to_string(),
                "outer/inner2".to_string(),
                "outer/inner[7]".to_string()
            ]
        );
        // durations keyed by path, one sample each
        assert_eq!(snap.span_durations["outer/inner"].len(), 1);
        assert_eq!(snap.span_durations["outer"].len(), 1);
    }

    #[test]
    fn spans_on_scoped_threads_report_into_one_sink() {
        let _l = lock();
        set_mode(Mode::Trace);
        reset();
        std::thread::scope(|scope| {
            for _ in 0..3 {
                scope.spawn(|| {
                    let _s = span("worker.task");
                    counter_add("worker.items", 1);
                });
            }
        });
        let snap = snapshot();
        set_mode(Mode::Off);
        assert_eq!(snap.counters["worker.items"], 3);
        let paths = snap.span_paths();
        assert_eq!(paths, vec!["worker.task"; 3]);
    }

    #[test]
    fn canonical_ignores_durations() {
        let _l = lock();
        set_mode(Mode::Trace);
        reset();
        {
            let _s = span("c.span");
            counter_add("c.counter", 5);
            counter_add("c.elapsed_ms", 17);
            observe("c.hist", 123.456);
        }
        let canon = snapshot().canonical();
        set_mode(Mode::Off);
        assert_eq!(
            canon,
            "span c.span\ncounter c.counter = 5\ncounter c.elapsed_ms\nhist c.hist n=1\n"
        );
    }

    #[test]
    fn histograms_route_through_summary() {
        let _l = lock();
        set_mode(Mode::Summary);
        reset();
        for v in [1.0, 2.0, 3.0] {
            observe("h.route", v);
        }
        let snap = snapshot();
        set_mode(Mode::Off);
        let h = &snap.histograms["h.route"];
        assert_eq!(h.len(), 3);
        assert_eq!(h.mean(), 2.0);
        assert_eq!(h.percentile(0.0), 1.0);
        assert_eq!(h.percentile(100.0), 3.0);
    }
}
