//! Offline drop-in subset of `proptest`.
//!
//! Supports the workspace's usage: the `proptest!` macro with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, range
//! strategies over integers/floats, `any::<bool>()`, and
//! `prop_assert!`/`prop_assert_eq!`. Failing cases report their inputs and
//! the deterministic case seed; there is no shrinking — cases are small
//! enough here that the raw inputs are directly debuggable.

pub mod strategy {
    use crate::test_runner::CaseRng;
    use std::ops::Range;

    /// A source of random test inputs.
    pub trait Strategy {
        type Value: std::fmt::Debug + Clone;
        fn sample(&self, rng: &mut CaseRng) -> Self::Value;
    }

    macro_rules! int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut CaseRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + ((rng.next_u64() as u128 * span as u128) >> 64) as $t
                }
            }
        )*};
    }

    int_strategy!(u8, u16, u32, u64, usize);

    macro_rules! float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut CaseRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    self.start + (self.end - self.start) * unit as $t
                }
            }
        )*};
    }

    float_strategy!(f64);

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut CaseRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            let unit = (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32);
            self.start + (self.end - self.start) * unit
        }
    }

    /// `any::<T>()` marker strategy.
    pub struct Any<T>(std::marker::PhantomData<T>);

    pub fn any<T>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl Strategy for Any<bool> {
        type Value = bool;
        fn sample(&self, rng: &mut CaseRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Constant strategy, for completeness with upstream's `Just`.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: std::fmt::Debug + Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut CaseRng) -> T {
            self.0.clone()
        }
    }
}

pub mod test_runner {
    /// SplitMix64 stream dedicated to one test case.
    pub struct CaseRng {
        x: u64,
    }

    impl CaseRng {
        pub fn new(seed: u64) -> Self {
            CaseRng { x: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.x = self.x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    /// Runner configuration; only `cases` is interpreted.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Soft test-case failure raised by `prop_assert!`.
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { config }
        }

        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// Deterministic per-case rng: independent of execution order.
        pub fn rng_for(&self, test_name: &str, case: u32) -> CaseRng {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in test_name.bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100000001b3);
            }
            CaseRng::new(h ^ (case as u64).wrapping_mul(0x9E3779B97F4A7C15))
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// The `proptest!` block: an optional config header followed by test
/// functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); ) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let runner = $crate::test_runner::TestRunner::new($cfg);
            for case in 0..runner.cases() {
                let mut case_rng = runner.rng_for(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut case_rng);)*
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)*),
                    $(&$arg),*
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}\n  inputs: {}",
                        stringify!($name), case, runner.cases(), e, inputs,
                    );
                }
            }
        }
        $crate::__proptest_items!{ ($cfg); $($rest)* }
    };
}
