//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the thin slice of `rand` it actually uses: `StdRng` (here a
//! xoshiro256\*\* generator seeded via SplitMix64), `SeedableRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool}` over integer and float ranges,
//! `seq::SliceRandom::{choose, shuffle}` and `rngs::mock::StepRng`.
//! Streams differ from upstream `rand`, which is fine: the repo's tests
//! assert distributional properties, never exact draws.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding interface; only `seed_from_u64` is used by this workspace.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    #[inline]
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with success probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform `[0, 1)` double from 53 random bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `[0, 1)` single from 24 random bits.
#[inline]
fn unit_f32(bits: u64) -> f32 {
    (bits >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Unbiased-enough integer in `[0, span)` via 128-bit multiply-shift.
#[inline]
fn mul_shift(bits: u64, span: u64) -> u64 {
    ((bits as u128 * span as u128) >> 64) as u64
}

/// Range types accepted by [`Rng::gen_range`].
///
/// Like upstream rand, this is blanket-implemented for `Range<T>` /
/// `RangeInclusive<T>` over one `SampleUniform` bound so type inference
/// can unify `T` with the range's element type before resolving float
/// literal defaults.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Numeric types `gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_in(lo, hi, true, rng)
    }
}

macro_rules! uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self {
                let span = ((hi as $u).wrapping_sub(lo as $u) as u64)
                    .wrapping_add(inclusive as u64);
                if span == 0 {
                    // Inclusive range spanning the full domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(mul_shift(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! uniform_float {
    ($($t:ty => $unit:ident),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_in<R: RngCore + ?Sized>(lo: Self, hi: Self, _inclusive: bool, rng: &mut R) -> Self {
                lo + (hi - lo) * $unit(rng.next_u64())
            }
        }
    )*};
}

uniform_float!(f32 => unit_f32, f64 => unit_f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Drop-in for `rand::rngs::StdRng`: xoshiro256\*\* seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 stream expands the 64-bit seed into full state and
            // guarantees a non-zero state even for seed 0.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    pub mod mock {
        use crate::RngCore;

        /// Deterministic counter "generator" for tests and dummy arguments.
        #[derive(Clone, Debug)]
        pub struct StepRng {
            v: u64,
            step: u64,
        }

        impl StepRng {
            pub fn new(initial: u64, step: u64) -> Self {
                StepRng { v: initial, step }
            }
        }

        impl RngCore for StepRng {
            #[inline]
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.step);
                out
            }
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Subset of `rand::seq::SliceRandom`: `choose` and `shuffle`.
    pub trait SliceRandom {
        type Item;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = super::mul_shift(rng.next_u64(), self.len() as u64) as usize;
                self.get(i)
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = super::mul_shift(rng.next_u64(), (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }

    // Convenience so `Vec<T>` method-call syntax resolves via deref.
    impl<T> SliceRandom for Vec<T> {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            self.as_slice().choose(rng)
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            self.as_mut_slice().shuffle(rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0u32..=5);
            assert!(y <= 5);
            let f = rng.gen_range(1e-7f64..1.0);
            assert!((1e-7..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
    }
}
