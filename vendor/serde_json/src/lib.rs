//! Offline drop-in subset of `serde_json`: `to_string`,
//! `to_string_pretty` and `from_str` over the vendored serde [`Value`]
//! data model.
//!
//! Numbers are emitted with Rust's shortest-round-trip `{:?}` formatting
//! and parsed with the standard library's correctly-rounded
//! `str::parse::<f64>()`, so every finite float (and every integer the
//! workspace serializes, |n| ≤ 2^53) survives a round trip bit-exactly —
//! the repo's serialization tests `assert_eq!` on raw f32 weights.

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization failure (malformed JSON, shape mismatch).
#[derive(Clone, Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.message())
    }
}

// Mirrors upstream serde_json so `serde_json::to_string_pretty(x)?` works
// inside functions returning `std::io::Result`.
impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.msg)
    }
}

/// Serialize `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize a `T` from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_block(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_block(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, item) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            });
        }
    }
}

fn write_block(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // Upstream serde_json also degrades non-finite floats to null.
        out.push_str("null");
        return;
    }
    if n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
        // Integral values print without the trailing ".0" Rust's Debug adds;
        // negative zero keeps its sign so bit-exact round trips hold.
        if n == 0.0 && n.is_sign_negative() {
            out.push_str("-0");
        } else {
            out.push_str(&format!("{}", n as i64));
        }
        return;
    }
    // Shortest representation that round-trips through parse::<f64>().
    let s = format!("{n:?}");
    out.push_str(&s);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::new(format!("invalid number `{text}` at offset {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 encoded char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_exactly() {
        for &x in &[
            0.0f64,
            -0.0,
            1.0,
            0.1,
            1e-300,
            -2.5e300,
            std::f32::consts::PI as f64,
            f64::from(f32::MIN_POSITIVE),
        ] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {s} -> {back}");
        }
    }

    #[test]
    fn f32_survive_via_f64() {
        let xs: Vec<f32> = vec![1.1, -3.4e-12, 7.777e33, f32::MAX, f32::MIN_POSITIVE];
        let s = to_string(&xs).unwrap();
        let back: Vec<f32> = from_str(&s).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\n\"quoted\"\tand \\ unicode ünïcödé";
        let json = to_string(&s.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn nested_values_round_trip() {
        let v: Vec<(String, Vec<f64>)> = vec![("a".into(), vec![1.0, 2.0]), ("b".into(), vec![])];
        let json = to_string_pretty(&v).unwrap();
        let back: Vec<(String, Vec<f64>)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<Vec<f64>>("[1,").is_err());
    }
}
