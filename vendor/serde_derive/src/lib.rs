//! `#[derive(Serialize, Deserialize)]` for the vendored serde shim.
//!
//! Written against `proc_macro` alone — no `syn`/`quote`, which the
//! offline build can't fetch. The parser walks the item's token trees
//! and extracts only what codegen needs: the item name, the shape of
//! each struct/variant (unit / tuple / named), field names, and
//! `#[serde(skip)]` markers. Field *types* are never parsed; generated
//! code relies on type inference (`::serde::field(..)?`,
//! `Deserialize::from_value(..)?`) instead.
//!
//! Supported shapes — everything this workspace derives on:
//! named structs, tuple structs (newtype included), unit structs, and
//! enums with unit / tuple / named-field variants (externally tagged,
//! like upstream serde). Generics are rejected with a clear error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct NamedField {
    name: String,
    skip: bool,
}

enum Fields {
    Unit,
    /// Tuple fields; only the count matters (skip unsupported here).
    Tuple(usize),
    Named(Vec<NamedField>),
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

// ---------------------------------------------------------------------------
// Token-tree parser
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip a run of attributes, returning whether any was `#[serde(skip)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut skip = false;
        loop {
            match (self.peek(), self.tokens.get(self.pos + 1)) {
                (Some(TokenTree::Punct(p)), Some(TokenTree::Group(g)))
                    if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
                {
                    if attr_is_serde_skip(g.stream()) {
                        skip = true;
                    }
                    self.pos += 2;
                }
                _ => return skip,
            }
        }
    }

    /// Skip `pub` / `pub(in path)` visibility markers.
    fn skip_vis(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde derive: expected {what}, found {other:?}"),
        }
    }

    /// Consume a field's type: everything up to a comma at angle depth 0.
    fn skip_type(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                _ => {}
            }
            self.pos += 1;
        }
    }
}

fn attr_is_serde_skip(attr: TokenStream) -> bool {
    let mut it = attr.into_iter();
    match (it.next(), it.next()) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(g))) if id.to_string() == "serde" => g
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<NamedField> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    loop {
        let skip = c.skip_attrs();
        c.skip_vis();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident("field name");
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde derive: expected `:` after field `{name}`, found {other:?}"),
        }
        c.skip_type();
        fields.push(NamedField { name, skip });
        // Trailing comma between fields.
        if let Some(TokenTree::Punct(p)) = c.peek() {
            if p.as_char() == ',' {
                c.pos += 1;
            }
        }
    }
    fields
}

fn parse_tuple_fields(ts: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut saw_tokens = false;
    for t in ts {
        match t {
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_tokens = false;
            }
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attrs();
    c.skip_vis();
    let kind = c.expect_ident("`struct` or `enum`");
    let name = c.expect_ident("item name");
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde derive shim: generic types are not supported (on `{name}`)");
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(parse_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde derive: unexpected struct body for `{name}`: {other:?}"),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde derive: unexpected enum body for `{name}`: {other:?}"),
            };
            let mut vc = Cursor::new(body);
            let mut variants = Vec::new();
            loop {
                vc.skip_attrs();
                if vc.peek().is_none() {
                    break;
                }
                let vname = vc.expect_ident("variant name");
                let fields = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let f = Fields::Tuple(parse_tuple_fields(g.stream()));
                        vc.pos += 1;
                        f
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let f = Fields::Named(parse_named_fields(g.stream()));
                        vc.pos += 1;
                        f
                    }
                    _ => Fields::Unit,
                };
                // Skip an optional discriminant (`= expr`) and the comma.
                while let Some(t) = vc.peek() {
                    if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                        vc.pos += 1;
                        break;
                    }
                    vc.pos += 1;
                }
                variants.push((vname, fields));
            }
            Item::Enum { name, variants }
        }
        other => panic!("serde derive: expected struct or enum, found `{other}`"),
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn derive_serialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Named(fs) => {
                    let pushes: Vec<String> = fs
                        .iter()
                        .filter(|f| !f.skip)
                        .map(|f| {
                            format!(
                                "(String::from(\"{n}\"), ::serde::Serialize::to_value(&self.{n}))",
                                n = f.name
                            )
                        })
                        .collect();
                    format!("::serde::Value::Map(vec![{}])", pushes.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str(String::from(\"{vname}\")),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(f0) => ::serde::Value::Map(vec![(String::from(\"{vname}\"), ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({binds}) => ::serde::Value::Map(vec![(String::from(\"{vname}\"), ::serde::Value::Seq(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binds: Vec<String> =
                            fs.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fs
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(String::from(\"{n}\"), ::serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {binds} }} => ::serde::Value::Map(vec![(String::from(\"{vname}\"), ::serde::Value::Map(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn de_named_ctor(path: &str, fields: &[NamedField], map_expr: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            if f.skip {
                format!("{n}: ::std::default::Default::default()", n = f.name)
            } else {
                format!("{n}: ::serde::field({map_expr}, \"{n}\")?", n = f.name)
            }
        })
        .collect();
    format!("{path} {{ {} }}", inits.join(", "))
}

fn derive_deserialize_impl(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("::std::result::Result::Ok({name})"),
                Fields::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                        .collect();
                    format!(
                        "let s = v.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected array for {name}\"))?;\n\
                         if s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(\"wrong tuple arity for {name}\")); }}\n\
                         ::std::result::Result::Ok({name}({items}))",
                        items = items.join(", ")
                    )
                }
                Fields::Named(fs) => {
                    let ctor = de_named_ctor(name, fs, "m");
                    format!(
                        "let m = v.as_map().ok_or_else(|| ::serde::DeError::custom(\"expected map for {name}\"))?;\n\
                         ::std::result::Result::Ok({ctor})"
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => unit_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Fields::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let s = inner.as_seq().ok_or_else(|| ::serde::DeError::custom(\"expected array for {name}::{vname}\"))?;\n\
                                 if s.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::custom(\"wrong arity for {name}::{vname}\")); }}\n\
                                 ::std::result::Result::Ok({name}::{vname}({items}))\n\
                             }}\n",
                            items = items.join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let ctor = de_named_ctor(&format!("{name}::{vname}"), fs, "m2");
                        tagged_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                                 let m2 = inner.as_map().ok_or_else(|| ::serde::DeError::custom(\"expected map for {name}::{vname}\"))?;\n\
                                 ::std::result::Result::Ok({ctor})\n\
                             }}\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\
                                 other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                                 let (k, inner) = &m[0];\n\
                                 let _ = inner;\n\
                                 match k.as_str() {{\n\
                                     {tagged_arms}\
                                     other => ::std::result::Result::Err(::serde::DeError::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }},\n\
                             _ => ::std::result::Result::Err(::serde::DeError::custom(\"bad enum encoding for {name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_serialize_impl(&item)
        .parse()
        .expect("serde derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    derive_deserialize_impl(&item)
        .parse()
        .expect("serde derive: generated invalid Deserialize impl")
}
