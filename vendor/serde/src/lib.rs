//! Offline drop-in subset of `serde`.
//!
//! The real serde's visitor-based architecture exists to support many
//! wire formats with zero-copy; this workspace only ever round-trips
//! through JSON text (`serde_json` shim). So the data model here is a
//! simple owned [`Value`] tree: `Serialize` renders into it,
//! `Deserialize` reads back out of it. `#[derive(Serialize, Deserialize)]`
//! is provided by the companion `serde_derive` shim and targets exactly
//! this trait pair. Representation choices (externally tagged enums,
//! transparent newtypes, skip → `Default`) mirror upstream serde so the
//! JSON written by this shim looks like what real serde would emit.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The self-describing value tree both traits speak.
///
/// Numbers are `f64`: every integer this workspace serializes fits
/// losslessly (|n| ≤ 2^53), and f32 → f64 is exact, which keeps the
/// repo's `assert_eq!` round-trip tests bit-exact.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}

/// Render `self` into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Deserialization error: a human-readable path/expectation message.
#[derive(Clone, Debug)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }

    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Look up and deserialize a named struct field (derive-internal helper).
pub fn field<T: Deserialize>(map: &[(String, Value)], key: &str) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| DeError::custom(format!("field `{key}`: {}", e.message())))
        }
        None => Err(DeError::custom(format!("missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_f64()
                    .ok_or_else(|| DeError::custom(concat!("expected number for ", stringify!($t))))?;
                if n.fract() != 0.0 {
                    return Err(DeError::custom(concat!("expected integer for ", stringify!($t))));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(DeError::custom(concat!("out of range for ", stringify!($t))));
                }
                Ok(n as $t)
            }
        }
    )*};
}

int_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Num(n) => Ok(*n),
            // serde_json writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            _ => Err(DeError::custom("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

// ---------------------------------------------------------------------------
// Compound impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_seq()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seq = v
            .as_seq()
            .ok_or_else(|| DeError::custom("expected array"))?;
        if seq.len() != N {
            return Err(DeError::custom("array length mismatch"));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(seq) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

/// `Value` is its own data-model representation, so serializing is a
/// clone and deserializing always succeeds. This lets callers keep a
/// sub-tree of a parsed document opaque (e.g. extract one field of a
/// request envelope, re-render it with `serde_json::to_string`, and
/// hand the text to a typed parser).
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let seq = v.as_seq().ok_or_else(|| DeError::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(DeError::custom("tuple length mismatch"));
                }
                Ok(($($name::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}
