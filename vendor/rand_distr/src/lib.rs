//! Offline drop-in subset of `rand_distr`: the `Distribution` trait and a
//! Box–Muller `LogNormal`, the only distribution this workspace samples.

use rand::RngCore;

/// Types that can sample values of `T` from a randomness source.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Parameter error returned by distribution constructors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Error {
    /// A scale/shape parameter was not finite and non-negative.
    BadParameter,
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// Log-normal distribution: `exp(mu + sigma * N(0, 1))`.
#[derive(Clone, Copy, Debug)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, Error> {
        if !(mu.is_finite() && sigma.is_finite() && sigma >= 0.0) {
            return Err(Error::BadParameter);
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }
}

/// One standard-normal draw via Box–Muller (the cosine branch).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so the log is finite; u2 in [0, 1).
    let u1 = ((rng.next_u64() >> 11) + 1) as f64 * (1.0 / (1u64 << 53) as f64);
    let u2 = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, 0.0).is_ok());
    }

    #[test]
    fn mean_one_lognormal_is_mean_one() {
        // mu = -sigma^2/2 gives E[X] = 1.
        let sigma = 0.25;
        let dist = LogNormal::new(-sigma * sigma / 2.0, sigma).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean={mean}");
    }
}
