//! Offline drop-in subset of `criterion`.
//!
//! Implements the API surface the bench targets use — `Criterion`
//! builder methods, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! warm-up + timed-batches measurement loop instead of upstream's
//! statistical analysis. Reported numbers are median/min/max ns per
//! iteration across sample batches.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver; collects settings and runs registered functions.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(name);
        self
    }
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measure `routine`: warm up, size a batch so one sample is
    /// long enough to time accurately, then record `sample_size` batches.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up while estimating the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time || warm_iters == 0 {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Pick a batch size so the full measurement fits measurement_time.
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            self.samples_ns.push(ns);
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(f64::total_cmp);
        let median = s[s.len() / 2];
        let min = s[0];
        let max = s[s.len() - 1];
        println!(
            "{name:<40} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.4} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.4} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.4} µs", ns / 1e3)
    } else {
        format!("{ns:.2} ns")
    }
}

/// Group bench functions, optionally with a shared `Criterion` config.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Entry point: run every group from `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
