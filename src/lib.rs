//! Facade crate re-exporting the ZeroTune workspace public API.
#![deny(unsafe_code)]

pub use zt_baselines as baselines;
pub use zt_core as core;
pub use zt_dspsim as dspsim;
pub use zt_experiments as experiments;
pub use zt_nn as nn;
pub use zt_query as query;
pub use zt_serve as serve;
pub use zt_telemetry as telemetry;
