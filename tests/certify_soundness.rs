//! Soundness of the model-certification pass (`zt_nn::certify` +
//! `zt_core::certify`).
//!
//! The contract under test: the interval bound propagation over trained
//! weights **encloses** the concrete `f32` inference kernels —
//!
//! * for seeded random MLPs, every `Mlp::infer` output on inputs sampled
//!   across the feature box lies inside the certified output bracket,
//!   with **exact** containment (no tolerance — the certificate's
//!   rounding model must absorb every `f32` operation itself);
//! * certified-dead ReLU units never fire empirically (the set of
//!   empirically-dead units is a superset of the certified-dead set);
//! * for the full GNN — both freshly initialized and trained on
//!   simulator-labeled data — every `forward_infer` output over encoded
//!   plans lies inside the certified bracket for that plan's data-flow
//!   depth, again with exact containment;
//! * a trained benchmark-scale model certifies clean (no error-severity
//!   ZT6xx findings).

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use zerotune::core::certify::{certify_model, dataflow_depth, CertifyConfig};
use zerotune::core::dataset::{generate_dataset, GenConfig};
use zerotune::core::diagnostics::Severity;
use zerotune::core::features::{FEATURE_MAX, FEATURE_MIN};
use zerotune::core::model::{ModelConfig, ZeroTuneModel};
use zerotune::core::train::{train, TrainConfig};
use zerotune::nn::certify::{certify_mlp, IntervalVec};
use zerotune::nn::{Matrix, Mlp, ParamStore, Scratch};

fn sample_box_input(dim: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..dim)
        .map(|_| rng.gen_range(FEATURE_MIN..=FEATURE_MAX))
        .collect()
}

/// Every node feature inside the certified box — the certificate's
/// premise. Encoded plans from the repo's generators always satisfy it
/// (ZT202 lints violations); the check keeps the test honest anyway.
fn in_box(graph: &zerotune::core::GraphEncoding) -> bool {
    graph.nodes.iter().all(|n| {
        n.features
            .iter()
            .all(|f| (FEATURE_MIN..=FEATURE_MAX).contains(f))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random MLPs: sampled outputs never escape the certified bracket,
    /// and certified-dead hidden units never produce a positive
    /// pre-activation.
    #[test]
    fn mlp_outputs_stay_inside_certified_bracket(
        seed in 0u64..1_000_000,
        hidden in 2usize..24,
        hidden_layers in 1usize..4,
        in_dim in 2usize..16,
    ) {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut dims = vec![in_dim];
        dims.extend(std::iter::repeat_n(hidden, hidden_layers));
        dims.push(2);
        let mlp = Mlp::new(&mut store, "m", &dims, &mut rng);

        let input = IntervalVec::uniform(
            in_dim,
            f64::from(FEATURE_MIN),
            f64::from(FEATURE_MAX),
        );
        let cert = certify_mlp(&store, &mlp, &input);

        let mut scratch = Scratch::new();
        let mut fired: Vec<Vec<bool>> = cert
            .hidden
            .iter()
            .map(|l| vec![false; l.dead.len()])
            .collect();
        for _ in 0..64 {
            let x = sample_box_input(in_dim, &mut rng);
            let out = mlp.infer(&store, &Matrix::row(&x), &mut scratch);
            prop_assert!(
                cert.output.contains(&out.data),
                "output {:?} escapes certified bracket [{:?}, {:?}] for input {x:?}",
                out.data, cert.output.lo, cert.output.hi
            );
            scratch.recycle(out);

            // replay the hidden pre-activations layer by layer
            let mut cur = Matrix::row(&x);
            for (l, layer) in mlp.layers[..mlp.layers.len() - 1].iter().enumerate() {
                let mut pre = layer.infer(&store, &cur, &mut scratch);
                for (j, &v) in pre.data.iter().enumerate() {
                    if v > 0.0 {
                        fired[l][j] = true;
                    }
                }
                for v in &mut pre.data {
                    *v = v.max(0.0);
                }
                cur = pre;
            }
        }
        for (l, units) in cert.hidden.iter().enumerate() {
            for (j, &dead) in units.dead.iter().enumerate() {
                if dead {
                    prop_assert!(
                        !fired[l][j],
                        "certified-dead unit (layer {l}, unit {j}) fired empirically"
                    );
                }
            }
        }
    }
}

/// Freshly initialized GNNs across sizes and seeds: every prediction over
/// encoded plans sits inside the certified bracket for the plan's
/// data-flow depth. Exact containment — no tolerance.
#[test]
fn fresh_gnn_predictions_stay_inside_certified_brackets() {
    let cfg = CertifyConfig::default();
    for (hidden, model_seed, data_seed) in [(8, 1, 21), (16, 2, 22), (48, 0x5EED, 23)] {
        let model = ZeroTuneModel::new(ModelConfig {
            hidden,
            seed: model_seed,
        });
        let cert = certify_model(&model, &cfg).expect("fresh model certifies structurally");
        let data = generate_dataset(&GenConfig::seen(), 12, data_seed);
        let mut scratch = Scratch::new();
        let mut checked = 0usize;
        for s in &data.samples {
            if !in_box(&s.graph) {
                continue;
            }
            let depth = dataflow_depth(&s.graph);
            assert!(
                depth <= cfg.max_depth,
                "generated plan deeper ({depth}) than the certificate covers"
            );
            let raw = model.forward_infer(&s.graph, &mut scratch);
            let escapes = cert.check_prediction(depth, raw);
            assert!(
                escapes.is_empty(),
                "hidden {hidden} seed {model_seed}: prediction {raw:?} at depth {depth} \
                 escaped: {escapes:?}"
            );
            checked += 1;
        }
        assert!(checked > 0, "no in-box samples to check");
    }
}

/// A mini GNN trained on simulator-labeled data: still certifies clean
/// (no error-severity ZT6xx findings) and every post-training prediction
/// stays inside its certified bracket.
#[test]
fn trained_gnn_certifies_clean_and_predictions_stay_inside_brackets() {
    let data = generate_dataset(&GenConfig::seen(), 48, 11);
    let mut model = ZeroTuneModel::new(ModelConfig {
        hidden: 16,
        seed: 3,
    });
    let report = train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 6,
            strict: false,
            ..TrainConfig::default()
        },
    );
    assert!(report.epochs_run > 0);

    let cfg = CertifyConfig::default();
    let cert = certify_model(&model, &cfg).expect("trained model certifies structurally");
    let errors: Vec<_> = cert
        .diagnostics()
        .into_iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    assert!(
        errors.is_empty(),
        "trained model must certify clean, got: {errors:?}"
    );

    let mut scratch = Scratch::new();
    let mut checked = 0usize;
    for s in &data.samples {
        if !in_box(&s.graph) {
            continue;
        }
        let depth = dataflow_depth(&s.graph);
        let raw = model.forward_infer(&s.graph, &mut scratch);
        let escapes = cert.check_prediction(depth, raw);
        assert!(
            escapes.is_empty(),
            "trained prediction {raw:?} at depth {depth} escaped: {escapes:?}"
        );
        checked += 1;
    }
    assert!(
        checked >= data.samples.len() / 2,
        "most generated samples should satisfy the certificate premises ({checked} did)"
    );
}
