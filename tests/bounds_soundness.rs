//! Soundness of the interval abstract interpreter (`zt_core::bounds`).
//!
//! The contract under test: for any plan/cluster/parallelism in the
//! sampled ranges, the statically derived intervals **bracket** the
//! executors —
//!
//! * the noiseless analytical solver (`simulate_core`) lands inside every
//!   headline and per-operator interval, with the skewed utilization /
//!   throttle / throughput endpoints matching *bitwise* (they are computed
//!   by the very same transfer functions);
//! * the discrete-event engine's measured throughput and latency land
//!   inside the throughput and pipeline brackets on provably feasible
//!   deployments, up to the engine's finite-horizon measurement tolerance
//!   (its own consistency suite grants it 20% on throughput);
//! * the optimizer's bounds pruning pre-pass is *conservative*: on the
//!   benchmark queries it discards candidates without changing the chosen
//!   argmin, while scoring strictly fewer of them.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zerotune::core::bounds::{analyze, BoundsConfig, BoundsReport};
use zerotune::core::datagen::{generate_dataset_with, GenPlan};
use zerotune::core::dataset::GenConfig;
use zerotune::core::model::{ModelConfig, ZeroTuneModel};
use zerotune::core::optimizer::{tune, OptimizerConfig};
use zerotune::core::train::{train, TrainConfig};
use zerotune::dspsim::analytical::{simulate_core, SimConfig};
use zerotune::dspsim::cluster::{Cluster, ClusterType};
use zerotune::dspsim::engine::{run, EngineConfig};
use zerotune::query::operators::*;
use zerotune::query::{
    benchmarks, DataType, LogicalPlan, OperatorKind, ParallelQueryPlan, TupleSchema,
};

fn source(rate: f64, width: usize) -> OperatorKind {
    OperatorKind::Source(SourceOp {
        event_rate: rate,
        schema: TupleSchema::uniform(DataType::Double, width),
        key_cardinality: None,
    })
}

fn filter(sel: f64) -> OperatorKind {
    OperatorKind::Filter(FilterOp {
        function: FilterFunction::Gt,
        literal_class: DataType::Double,
        selectivity: sel,
    })
}

fn agg(policy: WindowPolicy, length: f64, sel: f64) -> OperatorKind {
    OperatorKind::Aggregate(AggregateOp {
        window: WindowSpec::tumbling(policy, length),
        function: AggFunction::Avg,
        agg_class: DataType::Double,
        key_class: Some(DataType::Int),
        selectivity: sel,
        key_cardinality: None,
    })
}

/// source → filter → window-agg → sink.
fn linear(rate: f64, sel: f64, policy: WindowPolicy, window: f64, agg_sel: f64) -> LogicalPlan {
    let mut plan = LogicalPlan::new("bounds-linear");
    let s = plan.add(source(rate, 3));
    let f = plan.add(filter(sel));
    let a = plan.add(agg(policy, window, agg_sel));
    let k = plan.add(OperatorKind::Sink(SinkOp));
    plan.connect(s, f);
    plan.connect(f, a);
    plan.connect(a, k);
    plan
}

/// source → filter → filter → sink (window-free).
fn filter_chain(rate: f64, sel_a: f64, sel_b: f64) -> LogicalPlan {
    let mut plan = LogicalPlan::new("bounds-filters");
    let s = plan.add(source(rate, 4));
    let f1 = plan.add(filter(sel_a));
    let f2 = plan.add(filter(sel_b));
    let k = plan.add(OperatorKind::Sink(SinkOp));
    plan.connect(s, f1);
    plan.connect(f1, f2);
    plan.connect(f2, k);
    plan
}

/// Two sources into a windowed join (asymmetric rates to exercise the
/// opposite-window envelope).
fn windowed_join(rate_l: f64, rate_r: f64, policy: WindowPolicy, window: f64) -> LogicalPlan {
    let mut plan = LogicalPlan::new("bounds-join");
    let s1 = plan.add(source(rate_l, 3));
    let s2 = plan.add(source(rate_r, 5));
    let j = plan.add(OperatorKind::Join(JoinOp {
        window: WindowSpec::tumbling(policy, window),
        key_class: DataType::Int,
        selectivity: 0.01,
        key_cardinality: None,
    }));
    let k = plan.add(OperatorKind::Sink(SinkOp));
    plan.connect(s1, j);
    plan.connect(s2, j);
    plan.connect(j, k);
    plan
}

fn cluster_of(kind: u8, workers: usize) -> Cluster {
    let ty = if kind.is_multiple_of(2) {
        ClusterType::M510
    } else {
        ClusterType::Rs620
    };
    Cluster::homogeneous(ty, workers, 10.0)
}

/// Assert that the solver's point metrics land inside every interval of
/// the report (headline and per-operator), with the shared endpoints
/// matching bitwise.
fn assert_brackets_solver(pqp: &ParallelQueryPlan, cluster: &Cluster) -> Result<(), TestCaseError> {
    let report = analyze(pqp, cluster, &BoundsConfig::default());
    let m = simulate_core(pqp, cluster, &SimConfig::noiseless());
    prop_assert!(report.is_wellformed(), "malformed report: {report:?}");

    // Shared transfer functions ⇒ exact endpoints, not just containment.
    prop_assert_eq!(report.utilization.hi, m.bottleneck_utilization);
    prop_assert_eq!(report.backpressure_scale.lo, m.backpressure_scale);
    prop_assert_eq!(report.throughput.lo, m.throughput);

    prop_assert!(
        report.latency_ms.contains(m.latency_ms),
        "latency {} outside {:?}",
        m.latency_ms,
        report.latency_ms
    );
    prop_assert!(report.throughput.contains(m.throughput));
    prop_assert!(report.utilization.contains(m.bottleneck_utilization));
    prop_assert!(report.backpressure_scale.contains(m.backpressure_scale));
    prop_assert_eq!(report.per_op.len(), m.per_op.len());
    for (i, (op, b)) in m.per_op.iter().zip(&report.per_op).enumerate() {
        prop_assert!(
            b.input_rate.contains(op.input_rate),
            "op {i} input {} outside {:?}",
            op.input_rate,
            b.input_rate
        );
        prop_assert!(
            b.output_rate.contains(op.output_rate),
            "op {i} output {} outside {:?}",
            op.output_rate,
            b.output_rate
        );
        prop_assert!(
            b.work_us.contains(op.work_us),
            "op {i} work {} outside {:?}",
            op.work_us,
            b.work_us
        );
        prop_assert!(
            b.utilization.contains(op.utilization),
            "op {i} util {} outside {:?}",
            op.utilization,
            b.utilization
        );
        prop_assert!(
            b.sojourn_ms.contains(op.sojourn_ms),
            "op {i} sojourn {} outside {:?}",
            op.sojourn_ms,
            b.sojourn_ms
        );
        prop_assert!(
            b.residence_ms.contains(op.residence_ms),
            "op {i} residence {} outside {:?}",
            op.residence_ms,
            b.residence_ms
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Intervals bracket the solver on linear time- and count-window
    /// pipelines across rates spanning feasible to collapsing.
    #[test]
    fn brackets_solver_on_linear_plans(
        rate in 100.0f64..3_000_000.0,
        sel in 0.05f64..1.0,
        window in 10.0f64..2_000.0,
        agg_sel in 0.05f64..1.0,
        count_window in 0u8..2,
        p in 1u32..9,
        kind in 0u8..4,
        workers in 1usize..5,
    ) {
        let policy = if count_window == 1 { WindowPolicy::Count } else { WindowPolicy::Time };
        let plan = linear(rate, sel, policy, window, agg_sel);
        let n = plan.num_ops();
        let pqp = ParallelQueryPlan::with_parallelism(plan, vec![p; n]);
        assert_brackets_solver(&pqp, &cluster_of(kind, workers))?;
    }

    /// Intervals bracket the solver on window-free pipelines with mixed
    /// per-operator parallelism.
    #[test]
    fn brackets_solver_on_filter_chains(
        rate in 100.0f64..3_000_000.0,
        sel_a in 0.05f64..1.0,
        sel_b in 0.05f64..1.0,
        p_hot in 1u32..9,
        p_cold in 1u32..4,
        kind in 0u8..4,
        workers in 1usize..5,
    ) {
        let plan = filter_chain(rate, sel_a, sel_b);
        let pqp = ParallelQueryPlan::with_parallelism(
            plan,
            vec![p_cold, p_hot, p_cold, 1],
        );
        assert_brackets_solver(&pqp, &cluster_of(kind, workers))?;
    }

    /// Intervals bracket the solver on asymmetric windowed joins (the
    /// opposite-window weighted average is the one quantity that is NOT
    /// monotone in the backpressure throttle — the interval profile must
    /// still contain it).
    #[test]
    fn brackets_solver_on_windowed_joins(
        rate_l in 100.0f64..1_000_000.0,
        ratio in 0.01f64..1.0,
        window in 10.0f64..2_000.0,
        count_window in 0u8..2,
        p in 1u32..7,
        kind in 0u8..4,
        workers in 2usize..5,
    ) {
        let policy = if count_window == 1 { WindowPolicy::Count } else { WindowPolicy::Time };
        let plan = windowed_join(rate_l, rate_l * ratio, policy, window);
        let n = plan.num_ops();
        let pqp = ParallelQueryPlan::with_parallelism(plan, vec![p; n]);
        assert_brackets_solver(&pqp, &cluster_of(kind, workers))?;
    }
}

proptest! {
    // Engine runs simulate 5 wall-clock seconds of tuple flow each; keep
    // the case count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// On provably feasible deployments the engine's measurements land
    /// inside the brackets: source throughput inside the throughput
    /// interval and mean sink latency inside the pipeline interval. The
    /// engine measures over a finite horizon with sized batches, so both
    /// checks carry its documented measurement tolerance.
    #[test]
    fn brackets_the_discrete_event_engine_when_feasible(
        rate in 500.0f64..20_000.0,
        sel in 0.2f64..1.0,
        window in 50.0f64..500.0,
        p in 1u32..5,
        seed in 0u64..1_000,
    ) {
        let plan = linear(rate, sel, WindowPolicy::Time, window, 0.5);
        let n = plan.num_ops();
        let pqp = ParallelQueryPlan::with_parallelism(plan, vec![p; n]);
        let cluster = cluster_of(0, 2);
        let report = analyze(&pqp, &cluster, &BoundsConfig::default());
        prop_assert!(report.is_wellformed());
        // Low rates on m510 hardware are always feasible; this guards the
        // property's precondition rather than filtering cases.
        prop_assert!(report.definitely_feasible(), "sampled config not feasible");

        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = EngineConfig {
            // Finer batches than the default so per-batch service times
            // stay inside the per-tuple cost model's batching envelope.
            target_emissions: 20_000,
            ..EngineConfig::default()
        };
        let e = run(&pqp, &cluster, &cfg, &mut rng);
        prop_assert!(e.samples > 0, "engine produced no sink samples");

        // Throughput: the engine has no flow control, so it sustains the
        // offered rate — the interval's upper endpoint. 25% measurement
        // tolerance (the engine counts tuples over a finite window).
        prop_assert!(
            e.source_throughput >= report.throughput.lo * 0.75
                && e.source_throughput <= report.throughput.hi * 1.25,
            "engine throughput {} outside {:?}",
            e.source_throughput,
            report.throughput
        );

        // Latency: the pipeline bracket (no external I/O, no ingest
        // penalty — the engine models neither). The lower bound is the
        // per-hop floor both executors provably pay; the upper bound gets
        // the same 25% tolerance for batch-quantization effects.
        prop_assert!(
            e.latency_mean_ms >= report.pipeline_ms.lo * 0.99,
            "engine latency {} below floor {:?}",
            e.latency_mean_ms,
            report.pipeline_ms
        );
        prop_assert!(
            e.latency_mean_ms <= report.pipeline_ms.hi * 1.25,
            "engine latency {} above {:?}",
            e.latency_mean_ms,
            report.pipeline_ms
        );
    }
}

/// Helper: tune one plan with pruning on and off against the same
/// estimator and return both outcomes.
fn tune_both(
    plan: &LogicalPlan,
    cluster: &Cluster,
    model: &ZeroTuneModel,
) -> (
    zerotune::core::optimizer::TuningOutcome,
    zerotune::core::optimizer::TuningOutcome,
) {
    let on = tune(
        model,
        plan,
        cluster,
        &OptimizerConfig {
            prune: true,
            ..OptimizerConfig::default()
        },
    )
    .expect("valid plan");
    let off = tune(
        model,
        plan,
        cluster,
        &OptimizerConfig {
            prune: false,
            ..OptimizerConfig::default()
        },
    )
    .expect("valid plan");
    (on, off)
}

/// A small trained model (the telemetry suite's mini-pipeline recipe):
/// enough training that collapsing deployments score poorly, cheap
/// enough for a tier-1 test.
fn trained_mini_model() -> ZeroTuneModel {
    let data = generate_dataset_with(
        &GenConfig::seen(),
        24,
        0xB0_07D5,
        &GenPlan::serial().with_shard_size(8),
    );
    let mut model = ZeroTuneModel::new(ModelConfig {
        hidden: 16,
        seed: 11,
    });
    train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 3,
            batch_size: 8,
            patience: 0,
            seed: 7,
            ..TrainConfig::default()
        },
    );
    model
}

/// Acceptance criterion: on every benchmark query, tuning with the bounds
/// pruning pre-pass picks the *identical* argmin as exhaustive scoring
/// while provably-useless candidates are discarded before inference.
#[test]
fn tune_pruning_is_equivalent_on_benchmark_queries() {
    let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
    let model = trained_mini_model();
    // High offered rates: low-parallelism candidates provably collapse,
    // so the pre-pass has something sound to discard.
    let queries: [(&str, LogicalPlan); 3] = [
        ("spike_detection", benchmarks::spike_detection(1_500_000.0)),
        (
            "smart_grid_local",
            benchmarks::smart_grid_local(1_500_000.0),
        ),
        (
            "smart_grid_global",
            benchmarks::smart_grid_global(1_500_000.0),
        ),
    ];
    for (name, plan) in queries {
        let (on, off) = tune_both(&plan, &cluster, &model);
        assert_eq!(
            on.parallelism, off.parallelism,
            "{name}: pruning changed the argmin"
        );
        assert!(on.candidates_pruned > 0, "{name}: nothing was pruned");
        assert!(
            on.candidates_evaluated < off.candidates_evaluated,
            "{name}: pruning did not reduce scoring work"
        );
        assert_eq!(
            on.candidates_evaluated + on.candidates_pruned,
            off.candidates_evaluated,
            "{name}: pruning must partition the candidate set"
        );
        assert_eq!(off.candidates_pruned, 0, "{name}: prune=false still pruned");
    }
}

/// At benign rates nothing is provably infeasible or dominated, and the
/// pre-pass must degrade to a no-op with an unchanged outcome.
#[test]
fn tune_pruning_is_a_noop_on_feasible_benchmarks() {
    let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
    let model = trained_mini_model();
    for plan in [
        benchmarks::spike_detection(10_000.0),
        benchmarks::smart_grid_local(10_000.0),
        benchmarks::smart_grid_global(10_000.0),
    ] {
        let (on, off) = tune_both(&plan, &cluster, &model);
        assert_eq!(on.parallelism, off.parallelism);
        assert_eq!(
            on.candidates_evaluated + on.candidates_pruned,
            off.candidates_evaluated
        );
    }
}

/// The report's feasibility trichotomy agrees with the solver's verdict
/// on the extremes (a spot check the proptest families cross daily).
#[test]
fn feasibility_verdicts_match_the_solver() {
    let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
    let feasible =
        ParallelQueryPlan::with_parallelism(benchmarks::spike_detection(5_000.0), vec![2, 2, 2, 2]);
    let collapsing = ParallelQueryPlan::with_parallelism(
        benchmarks::spike_detection(80_000_000.0),
        vec![1, 1, 1, 1],
    );
    let r_ok: BoundsReport = analyze(&feasible, &cluster, &BoundsConfig::default());
    let r_bad = analyze(&collapsing, &cluster, &BoundsConfig::default());
    let m_ok = simulate_core(&feasible, &cluster, &SimConfig::noiseless());
    let m_bad = simulate_core(&collapsing, &cluster, &SimConfig::noiseless());
    assert!(r_ok.definitely_feasible());
    assert!(!m_ok.backpressured());
    assert!(r_bad.infeasible());
    assert!(m_bad.backpressured());
    assert!(m_bad.backpressure_scale < 1.0);
}
