//! End-to-end integration tests spanning the whole workspace: dataset
//! generation → training → prediction → optimization, plus model
//! persistence.

use zerotune::core::dataset::{generate_dataset, GenConfig};
use zerotune::core::model::{ModelConfig, ZeroTuneModel};
use zerotune::core::optimizer::{tune, OptimizerConfig};
use zerotune::core::train::{evaluate, train, TrainConfig};
use zerotune::core::CostEstimator;
use zerotune::dspsim::analytical::{simulate, SimConfig};
use zerotune::dspsim::cluster::{Cluster, ClusterType};
use zerotune::query::{ParallelQueryPlan, QueryGenerator, QueryStructure};

use rand::rngs::StdRng;
use rand::SeedableRng;

fn quick_model(n: usize, seed: u64) -> (ZeroTuneModel, zerotune::core::dataset::Dataset) {
    let data = generate_dataset(&GenConfig::seen(), n, seed);
    let (train_set, test_set, _) = data.split(0.85, 0.15, 0);
    let mut model = ZeroTuneModel::new(ModelConfig { hidden: 24, seed });
    train(
        &mut model,
        &train_set,
        &TrainConfig {
            epochs: 20,
            patience: 0,
            ..TrainConfig::default()
        },
    );
    (model, test_set)
}

#[test]
fn train_predict_pipeline_reaches_usable_accuracy() {
    let (model, test_set) = quick_model(350, 1);
    let (lat, tpt) = evaluate(&model, &test_set.samples);
    assert!(
        lat.median < 2.5,
        "latency median q-error too high: {}",
        lat.median
    );
    assert!(
        tpt.median < 2.5,
        "throughput median q-error too high: {}",
        tpt.median
    );
}

#[test]
fn model_round_trips_through_json() {
    let (model, test_set) = quick_model(200, 2);
    let json = model.to_json();
    let restored = ZeroTuneModel::from_json(&json).expect("valid model json");
    for s in test_set.samples.iter().take(10) {
        assert_eq!(model.predict(&s.graph), restored.predict(&s.graph));
    }
}

#[test]
fn optimizer_configuration_is_feasible_and_sensible() {
    let (model, _) = quick_model(300, 3);
    let mut rng = StdRng::seed_from_u64(9);
    let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
    for structure in [QueryStructure::Linear, QueryStructure::TwoWayJoin] {
        let plan = QueryGenerator::seen().generate(structure, &mut rng);
        let outcome =
            tune(&model, &plan, &cluster, &OptimizerConfig::default()).expect("valid plan");
        // Eq. 1 constraints: P ≥ 1 and max P ≤ n_core.
        assert_eq!(outcome.parallelism.len(), plan.num_ops());
        assert!(outcome.parallelism.iter().all(|&p| p >= 1));
        assert!(outcome
            .parallelism
            .iter()
            .all(|&p| p <= cluster.total_cores()));
        // the chosen deployment must actually run
        let pqp = ParallelQueryPlan::with_parallelism(plan, outcome.parallelism);
        assert!(pqp.validate().is_ok());
        let m = simulate(&pqp, &cluster, &SimConfig::noiseless(), &mut rng);
        assert!(m.latency_ms.is_finite() && m.throughput > 0.0);
    }
}

#[test]
fn zero_shot_prediction_on_unseen_structure_is_in_the_right_ballpark() {
    let (model, _) = quick_model(400, 4);
    // 4-way joins never appear in training.
    let unseen = generate_dataset(
        &GenConfig::unseen_structures().with_structures(vec![QueryStructure::NWayJoin(4)]),
        40,
        5,
    );
    let (lat, _) = evaluate(&model, &unseen.samples);
    // zero-shot on a structurally new plan: should be within one order of
    // magnitude at the median
    assert!(
        lat.median < 12.0,
        "zero-shot latency q-error too high: {}",
        lat.median
    );
}

#[test]
fn fewshot_does_not_degrade_and_stays_loadable() {
    let (mut model, _) = quick_model(250, 6);
    let shots = generate_dataset(
        &GenConfig::unseen_structures().with_structures(vec![QueryStructure::NWayJoin(5)]),
        60,
        7,
    );
    let test = generate_dataset(
        &GenConfig::unseen_structures().with_structures(vec![QueryStructure::NWayJoin(5)]),
        40,
        8,
    );
    let (_, before) = evaluate(&model, &test.samples);
    zerotune::core::fewshot::fine_tune(
        &mut model,
        &shots,
        &zerotune::core::fewshot::FewShotConfig::default(),
    );
    let (_, after) = evaluate(&model, &test.samples);
    assert!(
        after.median <= before.median * 1.25,
        "few-shot degraded throughput q-error: {} -> {}",
        before.median,
        after.median
    );
    // fine-tuned model still serializes
    let json = model.to_json();
    assert!(ZeroTuneModel::from_json(&json).is_ok());
}
