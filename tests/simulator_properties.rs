//! Property/metamorphic tests for the analytical simulator's physics.
//!
//! Each property states a monotonicity the queueing model must obey for
//! *any* workload in the sampled ranges — more parallelism never loses
//! throughput, higher offered rates never relieve backpressure, extra
//! operators never make a pipeline faster, and the noiseless solver is a
//! pure function of its inputs. Count-window plans are deliberately
//! excluded from the latency properties: a count window's residence time
//! *grows* with parallelism (each instance fills its window slower), so
//! latency is only monotone for window-free and time-window pipelines.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zerotune::dspsim::analytical::{simulate, simulate_core, SimConfig};
use zerotune::dspsim::cluster::{Cluster, ClusterType};
use zerotune::query::operators::*;
use zerotune::query::{DataType, LogicalPlan, OperatorKind, ParallelQueryPlan, TupleSchema};

fn source(rate: f64) -> OperatorKind {
    OperatorKind::Source(SourceOp {
        event_rate: rate,
        schema: TupleSchema::uniform(DataType::Double, 3),
        key_cardinality: None,
    })
}

fn filter(sel: f64) -> OperatorKind {
    OperatorKind::Filter(FilterOp {
        function: FilterFunction::Gt,
        literal_class: DataType::Double,
        selectivity: sel,
    })
}

fn time_agg(window_ms: f64) -> OperatorKind {
    OperatorKind::Aggregate(AggregateOp {
        window: WindowSpec::tumbling(WindowPolicy::Time, window_ms),
        function: AggFunction::Avg,
        agg_class: DataType::Double,
        key_class: Some(DataType::Int),
        selectivity: 0.3,
        key_cardinality: None,
    })
}

/// source → filter → time-window agg → sink.
fn time_window_plan(rate: f64, sel: f64, window_ms: f64) -> LogicalPlan {
    let mut plan = LogicalPlan::new("prop-time-window");
    let s = plan.add(source(rate));
    let f = plan.add(filter(sel));
    let a = plan.add(time_agg(window_ms));
    let k = plan.add(OperatorKind::Sink(SinkOp));
    plan.connect(s, f);
    plan.connect(f, a);
    plan.connect(a, k);
    plan
}

/// source → `n_filters` filters → sink (window-free pipeline).
fn filter_chain(rate: f64, sels: &[f64]) -> LogicalPlan {
    let mut plan = LogicalPlan::new("prop-filter-chain");
    let mut prev = plan.add(source(rate));
    for &sel in sels {
        let f = plan.add(filter(sel));
        plan.connect(prev, f);
        prev = f;
    }
    let k = plan.add(OperatorKind::Sink(SinkOp));
    plan.connect(prev, k);
    plan
}

fn solve(plan: &LogicalPlan, p: u32, workers: usize) -> zerotune::dspsim::QueryMetrics {
    let n = plan.num_ops();
    let pqp = ParallelQueryPlan::with_parallelism(plan.clone(), vec![p; n]);
    let cluster = Cluster::homogeneous(ClusterType::M510, workers, 10.0);
    simulate_core(&pqp, &cluster, &SimConfig::noiseless())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Scaling out never loses throughput: for a saturating workload,
    /// sustained throughput is non-decreasing in the (uniform)
    /// parallelism degree, and backpressure relief is monotone too.
    #[test]
    fn throughput_is_monotone_in_parallelism(
        rate in 50_000.0f64..2_000_000.0,
        sel in 0.1f64..1.0,
        window_ms in 50.0f64..2_000.0,
    ) {
        let plan = time_window_plan(rate, sel, window_ms);
        let mut prev_tpt = 0.0f64;
        let mut prev_scale = 0.0f64;
        for p in 1u32..=8 {
            let m = solve(&plan, p, 4);
            prop_assert!(m.throughput.is_finite() && m.throughput > 0.0);
            prop_assert!(
                m.throughput >= prev_tpt * (1.0 - 1e-9),
                "throughput dropped at p={}: {} -> {}", p, prev_tpt, m.throughput
            );
            prop_assert!(
                m.backpressure_scale >= prev_scale * (1.0 - 1e-9),
                "backpressure worsened at p={}: {} -> {}", p, prev_scale, m.backpressure_scale
            );
            prev_tpt = m.throughput;
            prev_scale = m.backpressure_scale;
        }
    }

    /// Backpressure onset is monotone in the offered rate: raising the
    /// source rate never *increases* the throttle factor, and the factor
    /// always stays in (0, 1].
    #[test]
    fn backpressure_onset_is_monotone_in_source_rate(
        base_rate in 1_000.0f64..50_000.0,
        sel in 0.1f64..1.0,
        p in 1u32..6,
    ) {
        let mut prev_scale = f64::INFINITY;
        for mult in [1.0, 4.0, 16.0, 64.0, 256.0] {
            let plan = filter_chain(base_rate * mult, &[sel, 0.8]);
            let n = plan.num_ops();
            let pqp = ParallelQueryPlan::with_parallelism(plan, vec![p; n]);
            let cluster = Cluster::homogeneous(ClusterType::M510, 2, 10.0);
            let m = simulate_core(&pqp, &cluster, &SimConfig::noiseless());
            prop_assert!(m.backpressure_scale > 0.0 && m.backpressure_scale <= 1.0);
            prop_assert!(
                m.backpressure_scale <= prev_scale * (1.0 + 1e-9),
                "throttle relaxed as rate grew: {} -> {}", prev_scale, m.backpressure_scale
            );
            prev_scale = m.backpressure_scale;
        }
    }

    /// Appending a pass-through (selectivity 1.0) filter to a pipeline
    /// adds work and a network hop, so it can never *reduce* end-to-end
    /// latency or *increase* sustained throughput. Chaining is pinned to
    /// `Never`: under `Auto` the extra operator can flip the chaining
    /// decision and legitimately *remove* hops, which is exactly the
    /// effect this property must not conflate with the physics.
    #[test]
    fn extra_operator_never_makes_the_pipeline_faster(
        rate in 1_000.0f64..200_000.0,
        sel in 0.1f64..1.0,
        p in 1u32..6,
    ) {
        let short = filter_chain(rate, &[sel]);
        let long = filter_chain(rate, &[sel, 1.0]);
        let cluster = Cluster::homogeneous(ClusterType::M510, 2, 10.0);
        let cfg = SimConfig {
            chaining: zerotune::dspsim::ChainingMode::Never,
            ..SimConfig::noiseless()
        };
        let m_short = simulate_core(
            &ParallelQueryPlan::with_parallelism(short.clone(), vec![p; short.num_ops()]),
            &cluster, &cfg,
        );
        let m_long = simulate_core(
            &ParallelQueryPlan::with_parallelism(long.clone(), vec![p; long.num_ops()]),
            &cluster, &cfg,
        );
        prop_assert!(
            m_long.latency_ms >= m_short.latency_ms * (1.0 - 1e-9),
            "extra operator reduced latency: {} -> {}", m_short.latency_ms, m_long.latency_ms
        );
        prop_assert!(
            m_long.throughput <= m_short.throughput * (1.0 + 1e-9),
            "extra operator increased throughput: {} -> {}", m_short.throughput, m_long.throughput
        );
    }

    /// Without backpressure, the sink's input rate is monotone in the
    /// filter's selectivity (more tuples pass → more tuples arrive).
    #[test]
    fn sink_rate_is_monotone_in_selectivity(
        rate in 200.0f64..2_000.0,
        sel_lo in 0.05f64..0.5,
        delta in 0.0f64..0.5,
    ) {
        let sel_hi = sel_lo + delta;
        let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
        let cfg = SimConfig::noiseless();
        let sink_rate = |sel: f64| {
            let plan = filter_chain(rate, &[sel]);
            let n = plan.num_ops();
            let m = simulate_core(
                &ParallelQueryPlan::with_parallelism(plan, vec![2; n]),
                &cluster, &cfg,
            );
            prop_assert!(!m.backpressured(), "workload unexpectedly saturated");
            Ok(m.per_op.last().expect("sink").input_rate)
        };
        let lo = sink_rate(sel_lo)?;
        let hi = sink_rate(sel_hi)?;
        prop_assert!(
            hi >= lo * (1.0 - 1e-9),
            "sink rate fell as selectivity rose: {} -> {}", lo, hi
        );
    }

    /// The noiseless solver is a pure function of the deployment: the
    /// caller's RNG state is irrelevant (σ = 0 draws nothing), and
    /// `simulate` ≡ `simulate_core` exactly.
    #[test]
    fn noiseless_simulation_is_a_pure_function(
        rate in 1_000.0f64..100_000.0,
        sel in 0.1f64..1.0,
        window_ms in 50.0f64..1_000.0,
        p in 1u32..8,
        seed_a in 0u64..1_000,
        seed_b in 0u64..1_000,
    ) {
        let plan = time_window_plan(rate, sel, window_ms);
        let n = plan.num_ops();
        let pqp = ParallelQueryPlan::with_parallelism(plan, vec![p; n]);
        let cluster = Cluster::homogeneous(ClusterType::M510, 2, 10.0);
        let cfg = SimConfig::noiseless();
        let mut rng_a = StdRng::seed_from_u64(seed_a);
        let mut rng_b = StdRng::seed_from_u64(seed_b);
        let a = simulate(&pqp, &cluster, &cfg, &mut rng_a);
        let b = simulate(&pqp, &cluster, &cfg, &mut rng_b);
        let core = simulate_core(&pqp, &cluster, &cfg);
        prop_assert_eq!(a.latency_ms.to_bits(), b.latency_ms.to_bits());
        prop_assert_eq!(a.throughput.to_bits(), b.throughput.to_bits());
        prop_assert_eq!(a.latency_ms.to_bits(), core.latency_ms.to_bits());
        prop_assert_eq!(a.throughput.to_bits(), core.throughput.to_bits());
    }
}

/// Not a proptest: documents the count-window caveat that shapes the
/// latency properties above. With a count window, each of the `p`
/// instances sees `1/p` of the stream, so its window fills `p`× slower
/// and the residence time *grows* with parallelism.
#[test]
fn count_window_residence_grows_with_parallelism() {
    let mut plan = LogicalPlan::new("count-window");
    let s = plan.add(source(10_000.0));
    let a = plan.add(OperatorKind::Aggregate(AggregateOp {
        window: WindowSpec::tumbling(WindowPolicy::Count, 1_000.0),
        function: AggFunction::Avg,
        agg_class: DataType::Double,
        key_class: Some(DataType::Int),
        selectivity: 0.2,
        key_cardinality: None,
    }));
    let k = plan.add(OperatorKind::Sink(SinkOp));
    plan.connect(s, a);
    plan.connect(a, k);

    let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
    let cfg = SimConfig::noiseless();
    let lat = |p: u32| {
        simulate_core(
            &ParallelQueryPlan::with_parallelism(plan.clone(), vec![p; 3]),
            &cluster,
            &cfg,
        )
        .latency_ms
    };
    assert!(
        lat(8) > lat(1),
        "count-window latency should grow with parallelism: p=1 {} ms, p=8 {} ms",
        lat(1),
        lat(8)
    );
}
