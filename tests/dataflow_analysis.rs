//! Monotone dataflow analysis: fixpoint determinism, agreement with the
//! simulators, the ZT7xx lint family (one trigger and one clean test per
//! code), and outcome-neutrality of the key-cardinality lattice cap.
//!
//! Three layers:
//!
//! * **fixpoint determinism** — proptest over generator-seeded plans of
//!   every structure class: solving each analysis twice yields identical
//!   fact maps, and `is_fixpoint` certifies them;
//! * **simulator agreement** — metamorphic checks against both
//!   simulators: throughput saturates once a keyed operator's degree
//!   reaches `ceil(K)` (extra instances are provably idle), and an edge
//!   the analysis brackets at `[0, 0]` carries zero engine tuples;
//! * **search-space capping** — `tune` with `dataflow_cap` on returns the
//!   identical winner (parallelism and both predictions) as with it off,
//!   while visiting no more lattice points.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zerotune::core::dataflow::{
    analyze_plan, is_fixpoint, lint_dataflow_plan, lint_dataflow_pqp, solve, ClassAnalysis,
    KeyAnalysis, KeyDist, RateAnalysis,
};
use zerotune::core::model::{ModelConfig, ZeroTuneModel};
use zerotune::core::optimizer::{tune, OptimizerConfig, SearchSpace};
use zerotune::dspsim::analytical::{simulate, SimConfig};
use zerotune::dspsim::cluster::{Cluster, ClusterType};
use zerotune::dspsim::engine::{run, EngineConfig};
use zerotune::query::operators::SinkOp;
use zerotune::query::{
    AggFunction, AggregateOp, DataType, FilterFunction, FilterOp, LogicalPlan, OpId, OperatorKind,
    ParallelQueryPlan, QueryGenerator, QueryStructure, SourceOp, TupleSchema, WindowPolicy,
    WindowSpec,
};

// --- helpers -------------------------------------------------------------

fn cluster() -> Cluster {
    Cluster::homogeneous(ClusterType::M510, 4, 10.0)
}

fn structure_from_index(i: u8) -> QueryStructure {
    match i % 8 {
        0 => QueryStructure::Linear,
        1 => QueryStructure::TwoWayJoin,
        2 => QueryStructure::ThreeWayJoin,
        3 => QueryStructure::ChainedFilters(2 + i % 3),
        4 => QueryStructure::NWayJoin(4 + i % 3),
        5 => QueryStructure::SpikeDetection,
        6 => QueryStructure::SmartGridLocal,
        _ => QueryStructure::SmartGridGlobal,
    }
}

fn generated_plan(structure_idx: u8, seed: u64) -> LogicalPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let structure = structure_from_index(structure_idx);
    let generator = if structure.is_seen() {
        QueryGenerator::seen()
    } else {
        QueryGenerator::unseen()
    };
    generator.generate(structure, &mut rng)
}

fn source(rate: f64, ty: DataType, width: usize, k: Option<f64>) -> OperatorKind {
    OperatorKind::Source(SourceOp {
        event_rate: rate,
        schema: TupleSchema::uniform(ty, width),
        key_cardinality: k,
    })
}

fn filter(ty: DataType, selectivity: f64) -> OperatorKind {
    OperatorKind::Filter(FilterOp {
        function: FilterFunction::Gt,
        literal_class: ty,
        selectivity,
    })
}

fn keyed_agg(key: DataType, k: Option<f64>) -> OperatorKind {
    OperatorKind::Aggregate(AggregateOp {
        function: AggFunction::Avg,
        key_class: Some(key),
        agg_class: key,
        window: WindowSpec::tumbling(WindowPolicy::Time, 1_000.0),
        selectivity: 1.0,
        key_cardinality: k,
    })
}

/// source → filter → keyed aggregate (cardinality `k`) → sink.
fn keyed_linear(k: Option<f64>) -> LogicalPlan {
    let mut p = LogicalPlan::new("keyed-linear");
    let s = p.add(source(10_000.0, DataType::Int, 3, None));
    let f = p.add(filter(DataType::Int, 0.8));
    let a = p.add(keyed_agg(DataType::Int, k));
    let snk = p.add(OperatorKind::Sink(SinkOp));
    p.connect(s, f);
    p.connect(f, a);
    p.connect(a, snk);
    p
}

/// A 12-operator chain of keyed aggregates that declare a cardinality:
/// source → (filter → keyed-agg)×5 → sink.
fn keyed_chain(k: f64) -> LogicalPlan {
    let mut p = LogicalPlan::new("keyed-chain12");
    let mut prev = p.add(source(50_000.0, DataType::Int, 3, Some(1_000.0)));
    for _ in 0..5 {
        let f = p.add(filter(DataType::Int, 0.9));
        p.connect(prev, f);
        let a = p.add(keyed_agg(DataType::Int, Some(k)));
        p.connect(f, a);
        prev = a;
    }
    let snk = p.add(OperatorKind::Sink(SinkOp));
    p.connect(prev, snk);
    p
}

fn has(diags: &[zerotune::core::Diagnostic], code: &str) -> bool {
    diags.iter().any(|d| d.code == code)
}

// --- fixpoint determinism ------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Solving any of the three analyses twice on the same sealed plan
    /// yields identical fact maps, and the result is a certified
    /// fixpoint — no worklist or iteration-order nondeterminism.
    #[test]
    fn solve_is_deterministic_and_reaches_a_fixpoint(
        structure_idx in 0u8..8,
        seed in 0u64..10_000,
    ) {
        let plan = generated_plan(structure_idx, seed);
        let ir = plan.validate().expect("generated plans seal");
        let n = plan.num_ops();
        let pqp = ParallelQueryPlan::with_parallelism(plan.clone(), vec![2; n]);

        let rate = RateAnalysis { pqp: Some(&pqp) };
        let key = KeyAnalysis { pqp: Some(&pqp) };
        let r1 = solve(&rate, &plan, &ir);
        let r2 = solve(&rate, &plan, &ir);
        prop_assert_eq!(&r1, &r2);
        prop_assert!(is_fixpoint(&rate, &plan, &ir, &r1));

        let k1 = solve(&key, &plan, &ir);
        let k2 = solve(&key, &plan, &ir);
        prop_assert_eq!(&k1, &k2);
        prop_assert!(is_fixpoint(&key, &plan, &ir, &k1));

        let c1 = solve(&ClassAnalysis, &plan, &ir);
        let c2 = solve(&ClassAnalysis, &plan, &ir);
        prop_assert_eq!(&c1, &c2);
        prop_assert!(is_fixpoint(&ClassAnalysis, &plan, &ir, &c1));

        // Plan-level (no deployment) facts must bracket the deployed
        // point facts: the hull is a sound over-approximation.
        let hull = solve(&RateAnalysis { pqp: None }, &plan, &ir);
        for (d, h) in r1.per_op.iter().zip(&hull.per_op) {
            prop_assert!(
                zerotune::core::dataflow::Domain::leq(d, h),
                "deployed fact {d:?} escapes plan-level hull {h:?}"
            );
        }
    }
}

// --- simulator agreement -------------------------------------------------

/// Parallelism beyond `ceil(K)` at a keyed operator is provably idle: a
/// hash partitioner on K distinct keys reaches at most K instances. Both
/// simulators must therefore produce *identical* metrics for degree
/// `ceil(K)` and any degree above it — the saturation the ZT704 cap
/// exploits.
#[test]
fn throughput_saturates_once_degree_reaches_key_cardinality() {
    let plan = keyed_linear(Some(3.0));
    let at_cap = ParallelQueryPlan::with_parallelism(plan.clone(), vec![1, 2, 3, 1]);
    for beyond in [4u32, 6, 8] {
        let over = ParallelQueryPlan::with_parallelism(plan.clone(), vec![1, 2, beyond, 1]);

        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let a1 = simulate(&at_cap, &cluster(), &SimConfig::noiseless(), &mut rng_a);
        let a2 = simulate(&over, &cluster(), &SimConfig::noiseless(), &mut rng_b);
        assert_eq!(
            a1.latency_ms.to_bits(),
            a2.latency_ms.to_bits(),
            "analytical latency must saturate at degree ceil(K)"
        );
        assert_eq!(
            a1.throughput.to_bits(),
            a2.throughput.to_bits(),
            "analytical throughput must saturate at degree ceil(K)"
        );

        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let e1 = run(&at_cap, &cluster(), &EngineConfig::default(), &mut rng_a);
        let e2 = run(&over, &cluster(), &EngineConfig::default(), &mut rng_b);
        assert_eq!(
            e1.sink_rate.to_bits(),
            e2.sink_rate.to_bits(),
            "engine sink rate must saturate at degree ceil(K)"
        );
        assert_eq!(e1.samples, e2.samples);
    }
}

/// An edge the rate analysis brackets at `[0, 0]` (ZT701) really carries
/// no tuples: the discrete-event engine delivers zero samples to the sink
/// behind it while the live branch keeps flowing.
#[test]
fn statically_dead_edges_carry_zero_engine_tuples() {
    let mut p = LogicalPlan::new("dead-branch");
    let s = p.add(source(5_000.0, DataType::Double, 3, None));
    let live = p.add(filter(DataType::Double, 0.5));
    let dead = p.add(filter(DataType::Double, 0.0));
    let live_sink = p.add(OperatorKind::Sink(SinkOp));
    let dead_sink = p.add(OperatorKind::Sink(SinkOp));
    p.connect(s, live);
    p.connect(s, dead);
    p.connect(live, live_sink);
    p.connect(dead, dead_sink);
    let ir = p.validate().expect("multi-sink plan seals");

    let diags = lint_dataflow_plan(&p, &ir);
    assert!(has(&diags, "ZT701"), "{diags:?}");

    let n = p.num_ops();
    let pqp = ParallelQueryPlan::with_parallelism(p.clone(), vec![1; n]);
    let mut rng = StdRng::seed_from_u64(3);
    let metrics = run(&pqp, &cluster(), &EngineConfig::default(), &mut rng);
    let sink_metrics = |op: OpId| {
        metrics
            .per_sink
            .iter()
            .find(|m| m.op == op)
            .expect("every sink is reported")
            .clone()
    };
    let dead_m = sink_metrics(dead_sink);
    assert_eq!(dead_m.samples, 0, "dead sink must see no tuples");
    assert_eq!(dead_m.sink_rate, 0.0);
    let live_m = sink_metrics(live_sink);
    assert!(live_m.samples > 0, "live sink must keep flowing");
    assert!(live_m.sink_rate > 0.0);
}

// --- ZT7xx: trigger + clean per code -------------------------------------

#[test]
fn zt701_clean_on_benchmark_plans() {
    for plan in [
        zerotune::query::benchmarks::spike_detection(10_000.0),
        zerotune::query::benchmarks::smart_grid_combined(1_000.0),
    ] {
        let ir = plan.validate().expect("benchmark seals");
        let diags = lint_dataflow_plan(&plan, &ir);
        assert!(!has(&diags, "ZT701"), "{diags:?}");
    }
}

#[test]
fn zt702_triggers_on_provably_network_throttled_edge() {
    let mut p = LogicalPlan::new("fat-stream");
    let s = p.add(source(100_000.0, DataType::Double, 32, None));
    let a = p.add(keyed_agg(DataType::Double, None));
    let snk = p.add(OperatorKind::Sink(SinkOp));
    p.connect(s, a);
    p.connect(a, snk);
    let ir = p.validate().expect("plan seals");
    let pqp = ParallelQueryPlan::with_parallelism(p, vec![1, 2, 1]);

    // A cluster whose aggregate links move ~1e5 B/s cannot carry the
    // hash edge's ≥ 2.5e7 B/s floor.
    let starved = Cluster::homogeneous(ClusterType::M510, 1, 0.001);
    let diags = lint_dataflow_pqp(&pqp, &ir, Some(&starved));
    assert!(has(&diags, "ZT702"), "{diags:?}");

    // The same deployment on 10 Gb/s links is clean.
    let diags = lint_dataflow_pqp(&pqp, &ir, Some(&cluster()));
    assert!(!has(&diags, "ZT702"), "{diags:?}");
}

#[test]
fn zt703_triggers_on_redundant_repartition() {
    // Two keyed aggregates on the same key class at the same effective
    // degree: the second hash partition re-shuffles an already
    // hash-distributed stream.
    let mut p = LogicalPlan::new("double-hash");
    let s = p.add(source(10_000.0, DataType::Int, 3, None));
    let a1 = p.add(keyed_agg(DataType::Int, None));
    let a2 = p.add(keyed_agg(DataType::Int, None));
    let snk = p.add(OperatorKind::Sink(SinkOp));
    p.connect(s, a1);
    p.connect(a1, a2);
    p.connect(a2, snk);
    let ir = p.validate().expect("plan seals");

    let redundant = ParallelQueryPlan::with_parallelism(p.clone(), vec![1, 2, 2, 1]);
    let diags = lint_dataflow_pqp(&redundant, &ir, None);
    assert!(has(&diags, "ZT703"), "{diags:?}");

    // Different degrees genuinely re-shuffle — clean.
    let reshuffle = ParallelQueryPlan::with_parallelism(p, vec![1, 2, 3, 1]);
    let diags = lint_dataflow_pqp(&reshuffle, &ir, None);
    assert!(!has(&diags, "ZT703"), "{diags:?}");
}

#[test]
fn zt704_triggers_on_parallelism_beyond_key_cardinality() {
    let plan = keyed_linear(Some(3.0));
    let ir = plan.validate().expect("plan seals");

    let over = ParallelQueryPlan::with_parallelism(plan.clone(), vec![1, 2, 8, 1]);
    let diags = lint_dataflow_pqp(&over, &ir, None);
    assert!(has(&diags, "ZT704"), "{diags:?}");

    let at_cap = ParallelQueryPlan::with_parallelism(plan, vec![1, 2, 3, 1]);
    let diags = lint_dataflow_pqp(&at_cap, &ir, None);
    assert!(!has(&diags, "ZT704"), "{diags:?}");
}

#[test]
fn zt705_triggers_on_key_class_missing_from_input_stream() {
    // The aggregate keys on Int but its input stream only carries
    // Double fields.
    let mut p = LogicalPlan::new("key-class-mismatch");
    let s = p.add(source(10_000.0, DataType::Double, 3, None));
    let a = p.add(keyed_agg(DataType::Int, None));
    let snk = p.add(OperatorKind::Sink(SinkOp));
    p.connect(s, a);
    p.connect(a, snk);
    let ir = p.validate().expect("plan seals");
    let diags = lint_dataflow_plan(&p, &ir);
    assert!(has(&diags, "ZT705"), "{diags:?}");

    // Keying on a class the stream does carry is clean — including the
    // second keyed aggregate fed by the first one's output (the key
    // class survives the aggregation).
    let mut p = LogicalPlan::new("key-class-match");
    let s = p.add(source(10_000.0, DataType::Int, 3, None));
    let a1 = p.add(keyed_agg(DataType::Int, None));
    let a2 = p.add(keyed_agg(DataType::Int, None));
    let snk = p.add(OperatorKind::Sink(SinkOp));
    p.connect(s, a1);
    p.connect(a1, a2);
    p.connect(a2, snk);
    let ir = p.validate().expect("plan seals");
    let diags = lint_dataflow_plan(&p, &ir);
    assert!(!has(&diags, "ZT705"), "{diags:?}");
}

/// The partitioning-flow facts behind ZT703: a deployed keyed operator's
/// output stream is hash-distributed on its key class at its *effective*
/// degree, and a rebalance destroys the property.
#[test]
fn key_distribution_facts_track_effective_degrees() {
    let plan = keyed_linear(Some(3.0));
    let ir = plan.validate().expect("plan seals");
    let pqp = ParallelQueryPlan::with_parallelism(plan.clone(), vec![1, 2, 8, 1]);
    let keys = solve(&KeyAnalysis { pqp: Some(&pqp) }, &plan, &ir);
    let agg = OpId(2);
    assert_eq!(
        keys.op(agg).dist,
        KeyDist::Hashed {
            class: DataType::Int,
            degree: 3
        },
        "output distribution must use the capped effective degree, not the raw 8"
    );
    assert_eq!(keys.op(agg).cardinality, Some(3.0));
}

// --- search-space capping ------------------------------------------------

fn lattice_cfg(dataflow_cap: bool) -> OptimizerConfig {
    OptimizerConfig {
        strict: false,
        dataflow_cap,
        search: SearchSpace::Lattice {
            max_degrees_per_op: 2,
            visit_budget: 100_000,
        },
        ..OptimizerConfig::default()
    }
}

/// On the 12-op keyed chain the cap provably removes lattice points
/// (every keyed axis collapses onto its canonical representative) while
/// returning the bitwise-identical winner.
#[test]
fn dataflow_cap_shrinks_the_chain_lattice_without_changing_the_winner() {
    let plan = keyed_chain(1.0);
    let model = ZeroTuneModel::new(ModelConfig {
        hidden: 12,
        seed: 42,
    });
    let capped = tune(&model, &plan, &cluster(), &lattice_cfg(true)).expect("chain tunes");
    let uncapped = tune(&model, &plan, &cluster(), &lattice_cfg(false)).expect("chain tunes");

    assert_eq!(capped.parallelism, uncapped.parallelism);
    assert_eq!(
        capped.predicted_latency_ms.to_bits(),
        uncapped.predicted_latency_ms.to_bits()
    );
    assert_eq!(
        capped.predicted_throughput.to_bits(),
        uncapped.predicted_throughput.to_bits()
    );
    assert!(capped.search_space <= uncapped.search_space);
    assert!(
        capped.dataflow_capped_ops > 0,
        "chain has 5 capped keyed ops"
    );
    assert!(capped.dataflow_points_removed > 0);
    assert_eq!(uncapped.dataflow_capped_ops, 0);
    assert_eq!(uncapped.dataflow_points_removed, 0);
}

#[test]
fn dataflow_cap_is_outcome_neutral_on_benchmark_plans() {
    for (i, plan) in [
        zerotune::query::benchmarks::spike_detection(10_000.0),
        zerotune::query::benchmarks::smart_grid_local(1_000.0),
        zerotune::query::benchmarks::smart_grid_global(1_000.0),
        keyed_linear(Some(3.0)),
        keyed_linear(Some(1.0)),
    ]
    .into_iter()
    .enumerate()
    {
        let model = ZeroTuneModel::new(ModelConfig {
            hidden: 12,
            seed: i as u64,
        });
        let capped = tune(&model, &plan, &cluster(), &lattice_cfg(true)).expect("plan tunes");
        let uncapped = tune(&model, &plan, &cluster(), &lattice_cfg(false)).expect("plan tunes");
        assert_eq!(capped.parallelism, uncapped.parallelism, "plan #{i}");
        assert_eq!(
            capped.predicted_latency_ms.to_bits(),
            uncapped.predicted_latency_ms.to_bits(),
            "plan #{i}"
        );
        assert_eq!(
            capped.predicted_throughput.to_bits(),
            uncapped.predicted_throughput.to_bits(),
            "plan #{i}"
        );
        assert!(capped.search_space <= uncapped.search_space, "plan #{i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Acceptance criterion: capping is outcome-neutral on any
    /// generator-seeded plan (the generator seeds `key_cardinality`, so
    /// this covers capped and uncapped operators alike).
    #[test]
    fn dataflow_cap_is_outcome_neutral_on_generated_plans(
        structure_idx in 0u8..8,
        seed in 0u64..10_000,
        workers in 2usize..5,
    ) {
        let plan = generated_plan(structure_idx, seed);
        let cluster = Cluster::homogeneous(ClusterType::M510, workers, 10.0);
        let model = ZeroTuneModel::new(ModelConfig { hidden: 12, seed });

        let capped = tune(&model, &plan, &cluster, &lattice_cfg(true))
            .expect("generated plans are valid");
        let uncapped = tune(&model, &plan, &cluster, &lattice_cfg(false))
            .expect("generated plans are valid");

        prop_assert_eq!(&capped.parallelism, &uncapped.parallelism);
        prop_assert_eq!(
            capped.predicted_latency_ms.to_bits(),
            uncapped.predicted_latency_ms.to_bits()
        );
        prop_assert_eq!(
            capped.predicted_throughput.to_bits(),
            uncapped.predicted_throughput.to_bits()
        );
        prop_assert!(capped.search_space <= uncapped.search_space);
    }
}

/// The full report wrapper solves all three analyses coherently: rates,
/// keys and classes share the plan's edge indexing.
#[test]
fn analyze_plan_report_is_internally_consistent() {
    let plan = zerotune::query::benchmarks::spike_detection(10_000.0);
    let ir = plan.validate().expect("benchmark seals");
    let report = analyze_plan(&plan, &ir);
    assert_eq!(report.rates.per_edge.len(), plan.edges().len());
    assert_eq!(report.keys.per_edge.len(), plan.edges().len());
    assert_eq!(report.classes.per_edge.len(), plan.edges().len());
    assert_eq!(report.rates.per_op.len(), plan.num_ops());
}
