//! Static-diagnostics coverage: every lint code has a test that triggers
//! it and a test (individual or shared per family) that stays clean, the
//! strict pre-flight hooks in `train`/`tune` reject corrupted inputs with
//! the right codes, and — property-tested — every plan accepted by
//! `EnumerationStrategy::enumerate` produces zero `Error`-level
//! diagnostics.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zerotune::core::diagnostics::{
    lint_dataset, lint_graph, lint_graph_batch, lint_model, lint_model_against, lint_plan,
    lint_pqp, lint_split, preflight_train, Report, Severity,
};
use zerotune::core::optisample::EnumerationStrategy;
use zerotune::core::train::{train, TrainConfig};
use zerotune::core::{
    generate_dataset, tune, Dataset, GenConfig, ModelConfig, OptimizerConfig, TargetNorm,
    ZeroTuneModel,
};
use zerotune::dspsim::cluster::{Cluster, ClusterType};
use zerotune::query::benchmarks::spike_detection;
use zerotune::query::builder::StreamBuilder;
use zerotune::query::{
    AggFunction, AggregateOp, DataType, FilterFunction, FilterOp, LogicalPlan, OperatorKind,
    ParallelQueryPlan, QueryGenerator, QueryStructure, SourceOp, TupleSchema, WindowPolicy,
    WindowSpec,
};

// --- helpers -------------------------------------------------------------

fn cluster() -> Cluster {
    Cluster::homogeneous(ClusterType::M510, 4, 10.0)
}

/// A valid linear plan: source → filter → aggregate → sink.
fn mini_plan() -> LogicalPlan {
    StreamBuilder::source(10_000.0, DataType::Double, 3)
        .filter(FilterFunction::Gt, DataType::Double, 0.5)
        .window_aggregate(
            WindowSpec::tumbling(WindowPolicy::Count, 100.0),
            AggFunction::Avg,
            DataType::Double,
            Some(DataType::Double),
            0.2,
        )
        .sink("mini")
}

fn gen_data(n: usize, seed: u64) -> Dataset {
    generate_dataset(&GenConfig::seen(), n, seed)
}

fn mini_model() -> ZeroTuneModel {
    ZeroTuneModel::new(ModelConfig {
        hidden: 16,
        seed: 42,
    })
}

/// Overwrite every value of the named parameter tensor.
fn poison(model: &mut ZeroTuneModel, param: &str, value: f32) {
    let id = model
        .store
        .ids()
        .find(|&id| model.store.name(id) == param)
        .unwrap_or_else(|| panic!("no parameter named {param}"));
    for v in &mut model.store.value_mut(id).data {
        *v = value;
    }
}

fn errors_of(diags: &[zerotune::core::Diagnostic]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
}

fn has(diags: &[zerotune::core::Diagnostic], code: &str) -> bool {
    diags.iter().any(|d| d.code == code)
}

// --- ZT1xx: plan lints ---------------------------------------------------

#[test]
fn zt101_triggers_on_plan_without_sink() {
    let mut p = LogicalPlan::new("no-sink");
    p.add(OperatorKind::Source(SourceOp {
        event_rate: 100.0,
        schema: TupleSchema::uniform(DataType::Int, 2),
        key_cardinality: None,
    }));
    let diags = lint_plan(&p);
    assert!(has(&diags, "ZT101"), "{diags:?}");
}

#[test]
fn zt101_triggers_on_parallelism_length_mismatch() {
    let pqp = ParallelQueryPlan {
        parallelism: vec![1],
        partitioning: Vec::new(),
        plan: mini_plan(),
    };
    let diags = lint_pqp(&pqp, None);
    assert!(has(&diags, "ZT101"), "{diags:?}");
}

#[test]
fn zt102_triggers_on_operator_off_the_sink_path() {
    let mut p = LogicalPlan::new("dead-branch");
    let s = p.add(OperatorKind::Source(SourceOp {
        event_rate: 100.0,
        schema: TupleSchema::uniform(DataType::Int, 2),
        key_cardinality: None,
    }));
    let dangling = p.add(OperatorKind::Filter(FilterOp {
        function: FilterFunction::Gt,
        literal_class: DataType::Int,
        selectivity: 0.5,
    }));
    let k = p.add(OperatorKind::Sink(zerotune::query::operators::SinkOp));
    p.connect(s, dangling); // never reaches the sink
    p.connect(s, k);
    let diags = lint_plan(&p);
    assert!(has(&diags, "ZT102"), "{diags:?}");
}

#[test]
fn zt108_triggers_on_dangling_branch_in_multi_sink_plan() {
    // Two proper sinks plus one forked branch that never terminates: the
    // dangling filter gets the multi-sink-specific ZT108, not ZT102.
    let mut p = LogicalPlan::new("dangling-branch");
    let s = p.add(OperatorKind::Source(SourceOp {
        event_rate: 100.0,
        schema: TupleSchema::uniform(DataType::Int, 2),
        key_cardinality: None,
    }));
    let dangling = p.add(OperatorKind::Filter(FilterOp {
        function: FilterFunction::Gt,
        literal_class: DataType::Int,
        selectivity: 0.5,
    }));
    let k1 = p.add(OperatorKind::Sink(zerotune::query::operators::SinkOp));
    let k2 = p.add(OperatorKind::Sink(zerotune::query::operators::SinkOp));
    p.connect(s, dangling); // forked but never sunk
    p.connect(s, k1);
    p.connect(s, k2);
    let diags = lint_plan(&p);
    assert!(has(&diags, "ZT108"), "{diags:?}");
    assert!(!has(&diags, "ZT102"), "{diags:?}");
}

#[test]
fn zt108_clean_on_valid_multi_sink_plan() {
    let plan = zerotune::query::benchmarks::smart_grid_combined(1_000.0);
    let diags = lint_plan(&plan);
    assert!(!has(&diags, "ZT108"), "{diags:?}");
    assert!(!has(&diags, "ZT102"), "{diags:?}");
    assert_eq!(errors_of(&diags), 0, "{diags:?}");
}

#[test]
fn reachability_diagnostics_are_exactly_one_per_op() {
    use zerotune::core::Anchor;

    let reachability_diags_at = |diags: &[zerotune::core::Diagnostic], id| {
        diags
            .iter()
            .filter(|d| {
                (d.code == "ZT102" || d.code == "ZT108") && d.anchor == Some(Anchor::Op(id))
            })
            .count()
    };

    // Single-sink plan, off-path operator: exactly one ZT102, never a
    // ZT108 on top of it.
    let mut single = LogicalPlan::new("single-sink-dead-branch");
    let s = single.add(OperatorKind::Source(SourceOp {
        event_rate: 100.0,
        schema: TupleSchema::uniform(DataType::Int, 2),
        key_cardinality: None,
    }));
    let dangling = single.add(OperatorKind::Filter(FilterOp {
        function: FilterFunction::Gt,
        literal_class: DataType::Int,
        selectivity: 0.5,
    }));
    let k = single.add(OperatorKind::Sink(zerotune::query::operators::SinkOp));
    single.connect(s, dangling);
    single.connect(s, k);
    let diags = lint_plan(&single);
    assert_eq!(reachability_diags_at(&diags, dangling), 1, "{diags:?}");
    assert!(has(&diags, "ZT102"), "{diags:?}");
    assert!(!has(&diags, "ZT108"), "{diags:?}");

    // Multi-sink plan, dangling branch: exactly one ZT108 for the forked
    // operator and no ZT102 shadowing it.
    let mut multi = LogicalPlan::new("multi-sink-dangling-branch");
    let s = multi.add(OperatorKind::Source(SourceOp {
        event_rate: 100.0,
        schema: TupleSchema::uniform(DataType::Int, 2),
        key_cardinality: None,
    }));
    let dangling = multi.add(OperatorKind::Filter(FilterOp {
        function: FilterFunction::Gt,
        literal_class: DataType::Int,
        selectivity: 0.5,
    }));
    let k1 = multi.add(OperatorKind::Sink(zerotune::query::operators::SinkOp));
    let k2 = multi.add(OperatorKind::Sink(zerotune::query::operators::SinkOp));
    multi.connect(s, dangling);
    multi.connect(s, k1);
    multi.connect(s, k2);
    let diags = lint_plan(&multi);
    assert_eq!(reachability_diags_at(&diags, dangling), 1, "{diags:?}");
    assert!(has(&diags, "ZT108"), "{diags:?}");
    assert!(!has(&diags, "ZT102"), "{diags:?}");

    // Every operator of both plans carries at most one structural
    // reachability diagnostic.
    for (plan, diags) in [(&single, lint_plan(&single)), (&multi, lint_plan(&multi))] {
        for op in plan.ops() {
            assert!(
                reachability_diags_at(&diags, op.id) <= 1,
                "op {} has overlapping ZT102/ZT108 diagnostics: {diags:?}",
                op.id
            );
        }
    }
}

#[test]
fn zt103_triggers_on_slide_exceeding_length() {
    let mut p = LogicalPlan::new("bad-window");
    let s = p.add(OperatorKind::Source(SourceOp {
        event_rate: 100.0,
        schema: TupleSchema::uniform(DataType::Double, 2),
        key_cardinality: None,
    }));
    let a = p.add(OperatorKind::Aggregate(AggregateOp {
        // Struct literal: `WindowSpec::sliding` debug-asserts validity.
        window: WindowSpec {
            policy: WindowPolicy::Time,
            length: 100.0,
            slide: Some(250.0),
        },
        function: AggFunction::Sum,
        agg_class: DataType::Double,
        key_class: None,
        selectivity: 0.1,
        key_cardinality: None,
    }));
    let k = p.add(OperatorKind::Sink(zerotune::query::operators::SinkOp));
    p.connect(s, a);
    p.connect(a, k);
    let diags = lint_plan(&p);
    assert!(has(&diags, "ZT103"), "{diags:?}");
    // The dedicated code replaces the generic ZT101 for this parameter.
    assert!(!has(&diags, "ZT101"), "{diags:?}");
}

#[test]
fn zt103_clean_when_slide_equals_length() {
    let plan = StreamBuilder::source(1_000.0, DataType::Double, 2)
        .window_aggregate(
            WindowSpec::sliding(WindowPolicy::Time, 500.0, 500.0),
            AggFunction::Max,
            DataType::Double,
            None,
            0.01,
        )
        .sink("edge");
    assert!(!has(&lint_plan(&plan), "ZT103"));
}

#[test]
fn zt104_triggers_on_zero_selectivity_that_validate_accepts() {
    let mut p = LogicalPlan::new("zero-sel");
    let s = p.add(OperatorKind::Source(SourceOp {
        event_rate: 100.0,
        schema: TupleSchema::uniform(DataType::Int, 2),
        key_cardinality: None,
    }));
    let f = p.add(OperatorKind::Filter(FilterOp {
        function: FilterFunction::Eq,
        literal_class: DataType::Int,
        selectivity: 0.0,
    }));
    let k = p.add(OperatorKind::Sink(zerotune::query::operators::SinkOp));
    p.connect(s, f);
    p.connect(f, k);
    assert!(p.validate().is_ok(), "validate() accepts selectivity 0");
    let diags = lint_plan(&p);
    assert!(has(&diags, "ZT104"), "{diags:?}");
}

#[test]
fn zt105_triggers_on_parallelism_beyond_cluster_slots() {
    let cl = cluster();
    let plan = mini_plan();
    let n = plan.num_ops();
    let over = cl.total_cores() + 1;
    let pqp = ParallelQueryPlan::with_parallelism(plan, vec![over; n]);
    let diags = lint_pqp(&pqp, Some(&cl));
    assert!(has(&diags, "ZT105"), "{diags:?}");
}

#[test]
fn zt106_triggers_on_hash_into_parallelism_one() {
    // The benchmark queries hash-partition into their keyed aggregation;
    // at parallelism 1 that shuffle is pure overhead.
    let pqp = ParallelQueryPlan::new(spike_detection(10_000.0));
    let diags = lint_pqp(&pqp, Some(&cluster()));
    assert!(has(&diags, "ZT106"), "{diags:?}");
    assert_eq!(errors_of(&diags), 0, "ZT106 is a warning: {diags:?}");
}

#[test]
fn zt106_clean_at_parallelism_two() {
    let plan = spike_detection(10_000.0);
    let n = plan.num_ops();
    let pqp = ParallelQueryPlan::with_parallelism(plan, vec![2; n]);
    assert!(!has(&lint_pqp(&pqp, Some(&cluster())), "ZT106"));
}

#[test]
fn zt107_triggers_on_oversubscribed_cluster() {
    let cl = cluster();
    let plan = mini_plan();
    let n = plan.num_ops();
    // Per-operator parallelism fits, but the instance total does not.
    let pqp = ParallelQueryPlan::with_parallelism(plan, vec![cl.total_cores(); n]);
    let diags = lint_pqp(&pqp, Some(&cl));
    assert!(has(&diags, "ZT107"), "{diags:?}");
    assert!(!has(&diags, "ZT105"), "{diags:?}");
}

#[test]
fn plan_family_clean_on_valid_deployment() {
    let pqp = ParallelQueryPlan::with_parallelism(mini_plan(), vec![2, 2, 2, 1]);
    let diags = lint_pqp(&pqp, Some(&cluster()));
    assert!(diags.is_empty(), "{diags:?}");
}

// --- ZT2xx: feature lints ------------------------------------------------

#[test]
fn zt201_triggers_on_nan_feature() {
    let mut data = gen_data(1, 11);
    data.samples[0].graph.nodes[0].features[0] = f32::NAN;
    let diags = lint_graph(&data.samples[0].graph);
    assert!(has(&diags, "ZT201"), "{diags:?}");
}

#[test]
fn zt202_triggers_on_out_of_range_feature() {
    let mut data = gen_data(1, 11);
    data.samples[0].graph.nodes[0].features[0] = 7.5;
    let diags = lint_graph(&data.samples[0].graph);
    assert!(has(&diags, "ZT202"), "{diags:?}");
    assert!(!has(&diags, "ZT201"), "{diags:?}");
}

#[test]
fn zt203_triggers_on_constant_batch() {
    let data = gen_data(1, 11);
    let copies: Vec<_> = (0..10).map(|_| data.samples[0].graph.clone()).collect();
    let diags = lint_graph_batch(copies.iter());
    assert!(has(&diags, "ZT203"), "{diags:?}");
}

#[test]
fn zt203_clean_on_varied_batch() {
    let data = gen_data(10, 11);
    let diags = lint_graph_batch(data.samples.iter().map(|s| &s.graph));
    assert!(!has(&diags, "ZT203"), "{diags:?}");
}

#[test]
fn zt204_triggers_on_bad_mapping_weight() {
    let mut data = gen_data(1, 11);
    let g = &mut data.samples[0].graph;
    g.mapping[0].2 = 2.0;
    let diags = lint_graph(g);
    assert!(has(&diags, "ZT204"), "{diags:?}");
}

#[test]
fn zt205_triggers_on_wrong_feature_dimension() {
    let mut data = gen_data(1, 11);
    data.samples[0].graph.nodes[0].features.push(0.0);
    let diags = lint_graph(&data.samples[0].graph);
    assert!(has(&diags, "ZT205"), "{diags:?}");
}

#[test]
fn feature_family_clean_on_generated_encoding() {
    let data = gen_data(2, 11);
    for s in &data.samples {
        let diags = lint_graph(&s.graph);
        assert!(diags.is_empty(), "{diags:?}");
    }
}

// --- ZT3xx: dataset lints ------------------------------------------------

#[test]
fn zt301_triggers_on_nan_label() {
    let mut data = gen_data(2, 13);
    data.samples[0].latency_ms = f64::NAN;
    let diags = lint_dataset(&data);
    assert!(has(&diags, "ZT301"), "{diags:?}");
}

#[test]
fn zt301_triggers_on_nonpositive_label() {
    let mut data = gen_data(2, 13);
    data.samples[1].throughput = 0.0;
    assert!(has(&lint_dataset(&data), "ZT301"));
}

#[test]
fn zt302_triggers_on_duplicate_sample() {
    let mut data = gen_data(2, 13);
    let dup = data.samples[0].clone();
    data.samples.push(dup);
    let diags = lint_dataset(&data);
    assert!(has(&diags, "ZT302"), "{diags:?}");
    assert_eq!(errors_of(&diags), 0, "{diags:?}");
}

#[test]
fn zt303_triggers_on_structure_leak() {
    let train = gen_data(3, 13);
    let mut test = gen_data(2, 14);
    // Claim the first test sample has an unseen structure while reusing a
    // structure name present in the training set.
    test.samples[0].meta.structure = train.samples[0].meta.structure.clone();
    test.samples[0].meta.seen_structure = false;
    let diags = lint_split(&train, &test);
    assert!(has(&diags, "ZT303"), "{diags:?}");
}

#[test]
fn zt303_clean_on_honest_split() {
    let data = gen_data(6, 13);
    let (train, test, _) = data.split(0.5, 0.5, 13);
    assert!(lint_split(&train, &test).is_empty());
}

#[test]
fn zt304_triggers_on_label_outlier() {
    let mut data = gen_data(24, 13);
    data.samples[0].latency_ms = 1e15;
    let diags = lint_dataset(&data);
    assert!(has(&diags, "ZT304"), "{diags:?}");
}

#[test]
fn zt305_triggers_on_constant_labels() {
    let mut data = gen_data(3, 13);
    for s in &mut data.samples {
        s.latency_ms = 123.0;
        s.throughput = 456.0;
    }
    let diags = lint_dataset(&data);
    assert!(has(&diags, "ZT305"), "{diags:?}");
    assert!(!has(&diags, "ZT302"), "distinct graphs are not duplicates");
}

#[test]
fn dataset_family_clean_on_generated_data() {
    let diags = lint_dataset(&gen_data(24, 13));
    assert!(diags.is_empty(), "{diags:?}");
}

// --- ZT4xx: model lints --------------------------------------------------

#[test]
fn zt401_triggers_on_nan_weight() {
    let mut model = mini_model();
    poison(&mut model, "readout.latency.0.w", f32::NAN);
    let diags = lint_model(&model);
    assert!(has(&diags, "ZT401"), "{diags:?}");
}

#[test]
fn zt402_triggers_on_dead_relu_layer() {
    let mut model = mini_model();
    // All-nonpositive incoming weights and biases on a hidden layer: every
    // unit of upd.dataflow's first layer can only emit zero.
    poison(&mut model, "upd.dataflow.0.w", -1.0);
    poison(&mut model, "upd.dataflow.0.b", -0.1);
    let diags = lint_model(&model);
    assert!(
        diags
            .iter()
            .any(|d| d.code == "ZT402" && format!("{:?}", d.anchor).contains("upd.dataflow")),
        "{diags:?}"
    );
}

#[test]
fn zt403_triggers_on_norm_drift() {
    let data = gen_data(4, 17);
    let mut model = mini_model();
    model.norm = TargetNorm {
        mean: [50.0, 50.0],
        std: [1.0, 1.0],
    };
    let diags = lint_model_against(&model, &data);
    assert!(has(&diags, "ZT403"), "{diags:?}");
    assert!(!has(&diags, "ZT404"), "{diags:?}");
}

#[test]
fn zt404_triggers_on_default_norm() {
    let diags = lint_model(&mini_model());
    assert!(has(&diags, "ZT404"), "{diags:?}");
}

#[test]
fn zt405_triggers_on_exploding_weights() {
    let mut model = mini_model();
    poison(&mut model, "enc.Source.0.w", 1_000.0);
    let diags = lint_model(&model);
    assert!(has(&diags, "ZT405"), "{diags:?}");
    assert_eq!(errors_of(&diags), 0, "{diags:?}");
}

#[test]
fn zt406_surfaces_from_predict_checked() {
    let data = gen_data(1, 19);
    let mut model = mini_model();
    // Poison only the read-out head: every Mlp still receives finite
    // inputs (the debug_assert in Mlp::infer stays quiet) but the final
    // prediction is NaN.
    poison(&mut model, "readout.latency.1.w", f32::NAN);
    let err = model
        .predict_checked(&data.samples[0].graph)
        .expect_err("NaN weights must not produce a silent prediction");
    assert_eq!(err.code, "ZT406");
}

#[test]
fn model_family_clean_after_norm_fit() {
    let data = gen_data(4, 17);
    let mut model = mini_model();
    model.norm = TargetNorm::fit(data.labels());
    let diags = lint_model_against(&model, &data);
    assert!(diags.is_empty(), "{diags:?}");
    assert!(model.predict_checked(&data.samples[0].graph).is_ok());
}

// --- strict-mode pre-flight hooks ----------------------------------------

#[test]
#[should_panic(expected = "ZT301")]
fn strict_train_rejects_nan_label() {
    let mut data = gen_data(4, 23);
    data.samples[0].latency_ms = f64::NAN;
    let mut model = mini_model();
    let cfg = TrainConfig {
        epochs: 1,
        strict: true,
        ..TrainConfig::default()
    };
    train(&mut model, &data, &cfg);
}

#[test]
#[should_panic(expected = "ZT103")]
fn strict_tune_rejects_slide_beyond_length() {
    let mut p = LogicalPlan::new("bad-window");
    let s = p.add(OperatorKind::Source(SourceOp {
        event_rate: 1_000.0,
        schema: TupleSchema::uniform(DataType::Double, 2),
        key_cardinality: None,
    }));
    let a = p.add(OperatorKind::Aggregate(AggregateOp {
        window: WindowSpec {
            policy: WindowPolicy::Time,
            length: 100.0,
            slide: Some(300.0),
        },
        function: AggFunction::Sum,
        agg_class: DataType::Double,
        key_class: None,
        selectivity: 0.1,
        key_cardinality: None,
    }));
    let k = p.add(OperatorKind::Sink(zerotune::query::operators::SinkOp));
    p.connect(s, a);
    p.connect(a, k);
    let model = mini_model();
    let cfg = OptimizerConfig {
        strict: true,
        ..OptimizerConfig::default()
    };
    let _ = tune(&model, &p, &cluster(), &cfg).expect("valid plan");
}

#[test]
fn strict_train_passes_on_clean_data() {
    let data = gen_data(8, 29);
    let mut model = mini_model();
    let report = preflight_train(&model, &data, true);
    assert!(!report.has_errors(), "{report}");
    let cfg = TrainConfig {
        epochs: 1,
        strict: true,
        ..TrainConfig::default()
    };
    let out = train(&mut model, &data, &cfg);
    assert!(out.epochs_run >= 1);
}

#[test]
fn strict_tune_passes_on_clean_plan() {
    let model = mini_model();
    let cfg = OptimizerConfig {
        strict: true,
        ..OptimizerConfig::default()
    };
    let outcome = tune(&model, &spike_detection(10_000.0), &cluster(), &cfg).expect("valid plan");
    assert!(!outcome.parallelism.is_empty());
}

#[test]
fn report_renders_rustc_style() {
    let mut data = gen_data(2, 13);
    data.samples[0].latency_ms = f64::NAN;
    let report = Report::new(lint_dataset(&data));
    let text = format!("{report}");
    assert!(text.contains("error[ZT301]"), "{text}");
    assert!(text.contains("--> sample 0"), "{text}");
    assert!(text.contains("error(s)"), "{text}");
}

// --- property: enumerate-accepted plans lint clean -----------------------

fn structure_from_index(i: u8) -> QueryStructure {
    match i % 8 {
        0 => QueryStructure::Linear,
        1 => QueryStructure::TwoWayJoin,
        2 => QueryStructure::ThreeWayJoin,
        3 => QueryStructure::ChainedFilters(2 + i % 3),
        4 => QueryStructure::NWayJoin(4 + i % 3),
        5 => QueryStructure::SpikeDetection,
        6 => QueryStructure::SmartGridLocal,
        _ => QueryStructure::SmartGridGlobal,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any plan the enumeration strategies accept is free of
    /// `Error`-level diagnostics: the generator and OptiSample respect
    /// every invariant the lints encode.
    #[test]
    fn enumerated_plans_produce_no_error_diagnostics(
        structure_idx in 0u8..8,
        seed in 0u64..10_000,
        workers in 1usize..6,
        random_strategy in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let structure = structure_from_index(structure_idx);
        let generator = if structure.is_seen() {
            QueryGenerator::seen()
        } else {
            QueryGenerator::unseen()
        };
        let plan = generator.generate(structure, &mut rng);
        let cl = Cluster::sample(&ClusterType::ALL, workers, &[1.0, 10.0], &mut rng);
        let strategy = if random_strategy {
            EnumerationStrategy::random()
        } else {
            EnumerationStrategy::opti_sample()
        };
        for parallelism in strategy.enumerate(&plan, &cl, 4, &mut rng) {
            let pqp = ParallelQueryPlan::with_parallelism(plan.clone(), parallelism);
            let diags = lint_pqp(&pqp, Some(&cl));
            let errors: Vec<_> = diags
                .iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            prop_assert!(errors.is_empty(), "{errors:?}");
        }
    }
}

// --- ZT5xx: bounds cross-check lints -------------------------------------

fn bounds_report(rate: f64, p: u32) -> zerotune::core::BoundsReport {
    let pqp = ParallelQueryPlan::with_parallelism(spike_detection(rate), vec![p; 4]);
    zerotune::core::analyze(&pqp, &cluster(), &zerotune::core::BoundsConfig::default())
}

#[test]
fn zt503_triggers_on_provably_infeasible_deployment() {
    let report = bounds_report(80_000_000.0, 1);
    assert!(report.infeasible());
    let diags = zerotune::core::lint_bounds_report(&report);
    assert!(has(&diags, "ZT503"), "{diags:?}");
    assert!(errors_of(&diags) > 0, "ZT503 must be an error: {diags:?}");
}

#[test]
fn zt504_triggers_on_inverted_interval() {
    let mut report = bounds_report(10_000.0, 2);
    report.latency_ms = zerotune::core::Interval { lo: 2.0, hi: 1.0 };
    let diags = zerotune::core::lint_bounds_report(&report);
    assert!(has(&diags, "ZT504"), "{diags:?}");
    assert!(errors_of(&diags) > 0, "ZT504 must be an error: {diags:?}");
}

#[test]
#[should_panic(expected = "ZT504")]
fn enforce_aborts_on_corrupt_bounds() {
    let mut report = bounds_report(10_000.0, 2);
    report.throughput = zerotune::core::Interval {
        lo: f64::NAN,
        hi: 1.0,
    };
    Report::new(zerotune::core::lint_bounds_report(&report)).enforce("bounds test");
}

#[test]
fn zt501_triggers_on_prediction_below_latency_lower_bound() {
    let report = bounds_report(10_000.0, 2);
    let pred = zerotune::core::CostPrediction {
        // Far enough under the lower bound to clear the 1.5× noise slack.
        latency_ms: report.latency_ms.lo / 10.0,
        throughput: report.throughput.lo,
    };
    let diags = zerotune::core::lint_prediction_bounds(&report, &pred);
    assert!(has(&diags, "ZT501"), "{diags:?}");
    assert_eq!(errors_of(&diags), 0, "ZT501 is a warning: {diags:?}");
}

#[test]
fn zt502_triggers_on_prediction_above_throughput_upper_bound() {
    let report = bounds_report(10_000.0, 2);
    let pred = zerotune::core::CostPrediction {
        latency_ms: report.latency_ms.hi,
        throughput: report.throughput.hi * 10.0,
    };
    let diags = zerotune::core::lint_prediction_bounds(&report, &pred);
    assert!(has(&diags, "ZT502"), "{diags:?}");
    assert_eq!(errors_of(&diags), 0, "ZT502 is a warning: {diags:?}");
}

#[test]
fn bounds_family_clean_on_sane_report_and_prediction() {
    let report = bounds_report(10_000.0, 2);
    assert!(zerotune::core::lint_bounds_report(&report).is_empty());
    let pred = zerotune::core::CostPrediction {
        latency_ms: report.latency_ms.hi.min(report.latency_ms.lo * 1.2),
        throughput: report.throughput.lo,
    };
    assert!(zerotune::core::lint_prediction_bounds(&report, &pred).is_empty());
}

/// ZT503 is a property of the workload, not a tuner bug: strict tuning on
/// a query that is provably infeasible at *every* candidate parallelism
/// must warn, not abort.
#[test]
fn strict_tune_survives_provably_infeasible_query() {
    let model = mini_model();
    let cfg = OptimizerConfig {
        strict: true,
        ..OptimizerConfig::default()
    };
    let outcome =
        tune(&model, &spike_detection(80_000_000.0), &cluster(), &cfg).expect("valid plan");
    assert!(!outcome.parallelism.is_empty());
}

// --- ZT109: wire envelope integrity --------------------------------------

/// Flip the first hex digit of the envelope's fingerprint field.
fn tamper_fingerprint(envelope: &str) -> String {
    let key = "\"fingerprint\":\"";
    let at = envelope.find(key).expect("envelope has a fingerprint") + key.len();
    let flipped = if envelope.as_bytes()[at] == b'0' {
        "1"
    } else {
        "0"
    };
    format!("{}{}{}", &envelope[..at], flipped, &envelope[at + 1..])
}

#[test]
fn zt109_is_registered_as_an_error() {
    let info = zerotune::core::diagnostics::describe("ZT109").expect("ZT109 in the registry");
    assert_eq!(info.severity, Severity::Error);
    assert!(info.summary.contains("fingerprint"), "{}", info.summary);
}

#[test]
fn zt109_triggers_on_tampered_wire_fingerprint() {
    let plan = spike_detection(1000.0);
    let ir = plan.validate().expect("benchmark plan seals");
    let envelope = ir.to_json(&plan).expect("benchmark plan serializes");

    let (sealed, report) = zerotune::core::lint_wire_plan(&tamper_fingerprint(&envelope));
    assert!(sealed.is_none(), "tampered envelope must not yield a plan");
    assert!(report.has_errors());
    assert!(
        report.diagnostics.iter().any(|d| d.code == "ZT109"),
        "{report}"
    );
}

#[test]
fn zt109_clean_on_faithful_wire_round_trip() {
    let plan = spike_detection(1000.0);
    let ir = plan.validate().expect("benchmark plan seals");
    let envelope = ir.to_json(&plan).expect("benchmark plan serializes");

    let (sealed, report) = zerotune::core::lint_wire_plan(&envelope);
    let (plan2, ir2) = sealed.expect("faithful envelope yields the plan");
    assert!(!report.has_errors(), "{report}");
    assert_eq!(ir2.fingerprint(), ir.fingerprint());
    assert_eq!(plan2.num_ops(), plan.num_ops());
}

#[test]
fn wire_garbage_maps_to_zt101_not_zt109() {
    let (sealed, report) = zerotune::core::lint_wire_plan("{definitely not an envelope");
    assert!(sealed.is_none());
    assert!(
        report.diagnostics.iter().any(|d| d.code == "ZT101"),
        "{report}"
    );
    assert!(
        report.diagnostics.iter().all(|d| d.code != "ZT109"),
        "a parse failure is not an integrity failure: {report}"
    );
}

// --- ZT407 + ZT6xx: structural guard and model certification -------------

use zerotune::core::certify::{certify_model, certify_report, CertifyConfig};
use zerotune::core::diagnostics::REGISTRY;

fn small_cert_cfg() -> CertifyConfig {
    CertifyConfig {
        max_depth: 6,
        ..CertifyConfig::default()
    }
}

#[test]
fn zt407_and_zt6xx_are_registered_with_stable_severities() {
    let sev = |code: &str| {
        REGISTRY
            .iter()
            .find(|info| info.code == code)
            .unwrap_or_else(|| panic!("{code} not in REGISTRY"))
            .severity
    };
    assert_eq!(sev("ZT407"), Severity::Error);
    assert_eq!(sev("ZT601"), Severity::Error);
    assert_eq!(sev("ZT602"), Severity::Error);
    assert_eq!(sev("ZT603"), Severity::Warning);
    assert_eq!(sev("ZT604"), Severity::Warning);
    assert_eq!(sev("ZT605"), Severity::Error);
}

#[test]
fn zt407_triggers_on_shape_metadata_mismatch() {
    let mut model = mini_model();
    let id = model.store.ids().next().expect("model has parameters");
    model.store.value_mut(id).rows += 1;
    // lint_model front-runs the structural check (ZT402's indexing would
    // otherwise trust the lying metadata)
    let diags = lint_model(&model);
    assert!(has(&diags, "ZT407"), "{diags:?}");
    assert!(errors_of(&diags) >= 1);
    // the certifier refuses the same model without touching weight data
    match certify_model(&model, &small_cert_cfg()) {
        Err(d) => assert_eq!(d.code, "ZT407"),
        Ok(_) => panic!("shape-tampered model must be refused"),
    }
}

#[test]
fn zt601_triggers_on_inflated_weights() {
    let mut model = mini_model();
    let ids: Vec<_> = model.store.ids().collect();
    for id in ids {
        for v in &mut model.store.value_mut(id).data {
            *v *= 1e4;
        }
    }
    let (cert, report) = certify_report(&model);
    assert!(
        cert.is_some(),
        "structure is intact, only magnitudes changed"
    );
    assert!(report.has_code("ZT601"), "{report}");
    assert!(report.has_errors());
}

#[test]
fn zt602_triggers_on_hijacked_constant_latency_head() {
    let mut model = mini_model();
    // zero the whole latency head, then plant a huge output bias: the
    // head provably outputs 1e6 for every input — no training label (a
    // z-score within a few sigma of 0) is reachable
    poison(&mut model, "readout.latency.0.w", 0.0);
    poison(&mut model, "readout.latency.0.b", 0.0);
    poison(&mut model, "readout.latency.1.w", 0.0);
    poison(&mut model, "readout.latency.1.b", 1e6);
    let cert = certify_model(&model, &small_cert_cfg()).expect("structure ok");
    let report = Report::new(cert.diagnostics());
    assert!(report.has_code("ZT602"), "{report}");
    assert!(report.has_errors());
}

#[test]
fn zt603_triggers_on_certified_dead_encoder_layer() {
    let mut model = mini_model();
    // strongly negative weights + negative bias: every unit of the
    // Source encoder's first layer is provably dead over the feature box
    poison(&mut model, "enc.Source.0.w", -10.0);
    poison(&mut model, "enc.Source.0.b", -1.0);
    let cert = certify_model(&model, &small_cert_cfg()).expect("structure ok");
    let report = Report::new(cert.diagnostics());
    assert!(report.has_code("ZT603"), "{report}");
    assert!(cert.summary().dead_units > 0);
}

#[test]
fn zt604_triggers_on_zero_sensitivity_features() {
    let mut model = mini_model();
    // zeroing the Filter encoder's first weight matrix severs every
    // input feature from the network — certified-zero sensitivity
    poison(&mut model, "enc.Filter.0.w", 0.0);
    let cert = certify_model(&model, &small_cert_cfg()).expect("structure ok");
    let report = Report::new(cert.diagnostics());
    assert!(report.has_code("ZT604"), "{report}");
    assert!(cert.summary().zero_sensitivity_features > 0);
}

#[test]
fn zt605_triggers_on_escaped_prediction() {
    let model = mini_model();
    let cert = certify_model(&model, &small_cert_cfg()).expect("structure ok");
    let flagged = cert.check_prediction(0, [f32::MAX, 0.0]);
    assert!(has(&flagged, "ZT605"), "{flagged:?}");

    // The denormalized variant needs a *tight* certified bracket to be
    // escapable (log-space compression keeps any finite prediction inside
    // a fresh model's astronomically wide bracket): a hijacked
    // constant-1e6 latency head certifies to a narrow bracket around
    // z = 1e6, which an ordinary prediction provably escapes.
    let mut hijacked = mini_model();
    poison(&mut hijacked, "readout.latency.0.w", 0.0);
    poison(&mut hijacked, "readout.latency.0.b", 0.0);
    poison(&mut hijacked, "readout.latency.1.w", 0.0);
    poison(&mut hijacked, "readout.latency.1.b", 1e6);
    let tight = certify_model(&hijacked, &small_cert_cfg()).expect("structure ok");
    let ordinary = zerotune::core::CostPrediction {
        latency_ms: 1.0,
        throughput: 1.0,
    };
    let flagged = tight.check_prediction_denorm(0, &ordinary);
    assert!(has(&flagged, "ZT605"), "{flagged:?}");
}

#[test]
fn certification_family_clean_on_fresh_model() {
    let (cert, report) = certify_report(&mini_model());
    let cert = cert.expect("fresh model certifies");
    assert!(!report.has_errors(), "{report}");
    let summary = cert.summary();
    assert!(summary.certified);
    assert!(summary.errors.is_empty());
}

#[test]
fn strict_train_runs_post_training_certification() {
    // a clean run must survive the new post-training certify pass
    let data = gen_data(24, 5);
    let mut model = mini_model();
    let report = train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 2,
            strict: true,
            ..TrainConfig::default()
        },
    );
    assert!(report.epochs_run > 0);
    let (_, cert_report) = certify_report(&model);
    assert!(!cert_report.has_errors(), "{cert_report}");
}
