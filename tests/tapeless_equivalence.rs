//! Property-based equivalence of the two forward passes: the autodiff
//! tape used for training and the tapeless scratch-arena path used for
//! prediction must produce the same outputs for *any* workload, cluster,
//! parallelism assignment and feature mask.
//!
//! Both paths share the same matmul kernel and mirror each aggregation's
//! accumulation order, so agreement is in practice bitwise; the asserted
//! tolerance is the 1e-5 contract.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zerotune::core::features::FeatureMask;
use zerotune::core::graph::encode;
use zerotune::core::model::{ModelConfig, ZeroTuneModel};
use zerotune::core::CostEstimator;
use zerotune::dspsim::cluster::{Cluster, ClusterType};
use zerotune::dspsim::placement::ChainingMode;
use zerotune::nn::{Scratch, Tape};
use zerotune::query::{ParallelQueryPlan, QueryGenerator, QueryStructure};

fn structure_from_index(i: u8) -> QueryStructure {
    match i % 8 {
        0 => QueryStructure::Linear,
        1 => QueryStructure::TwoWayJoin,
        2 => QueryStructure::ThreeWayJoin,
        3 => QueryStructure::ChainedFilters(2 + i % 3),
        4 => QueryStructure::NWayJoin(4 + i % 3),
        5 => QueryStructure::SpikeDetection,
        6 => QueryStructure::SmartGridLocal,
        _ => QueryStructure::SmartGridGlobal,
    }
}

fn mask_from_index(i: u8) -> FeatureMask {
    match i % 3 {
        0 => FeatureMask::all(),
        1 => FeatureMask::operator_only(),
        _ => FeatureMask::parallelism_resource_only(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `forward` (taped) and `forward_infer` (tapeless) agree within 1e-5
    /// on the normalized outputs for any encodable workload.
    #[test]
    fn tape_and_tapeless_forward_agree(
        structure_idx in 0u8..8,
        seed in 0u64..10_000,
        workers in 1usize..6,
        p in 1u32..64,
        mask_idx in 0u8..3,
        hidden in 8usize..32,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let structure = structure_from_index(structure_idx);
        let generator = if structure.is_seen() {
            QueryGenerator::seen()
        } else {
            QueryGenerator::unseen()
        };
        let plan = generator.generate(structure, &mut rng);
        let n = plan.num_ops();
        let pqp = ParallelQueryPlan::with_parallelism(plan, vec![p; n]);
        let cluster = Cluster::sample(&ClusterType::ALL, workers, &[1.0, 10.0], &mut rng);
        let graph = encode(&pqp, &cluster, ChainingMode::Auto, &mask_from_index(mask_idx));

        let model = ZeroTuneModel::new(ModelConfig { hidden, seed });

        let mut tape = Tape::new();
        let out = model.forward(&mut tape, &graph);
        let taped = tape.value(out).clone();

        let mut scratch = Scratch::new();
        let tapeless = model.forward_infer(&graph, &mut scratch);

        prop_assert_eq!(taped.data.len(), 2);
        for (t, i) in taped.data.iter().zip(tapeless.iter()) {
            prop_assert!(
                (t - i).abs() <= 1e-5,
                "tape {} vs tapeless {} diverge", t, i
            );
        }
    }

    /// `predict_batch` (scoped threads) returns exactly the per-graph
    /// `predict` results, in order.
    #[test]
    fn batched_prediction_matches_serial(
        seed in 0u64..10_000,
        workers in 1usize..6,
        batch in 1usize..12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = QueryGenerator::seen().generate(QueryStructure::TwoWayJoin, &mut rng);
        let n = plan.num_ops();
        let cluster = Cluster::sample(&ClusterType::ALL, workers, &[1.0, 10.0], &mut rng);
        let graphs: Vec<_> = (0..batch)
            .map(|i| {
                let p = 1 + ((seed as u32 + i as u32) % 16);
                let pqp = ParallelQueryPlan::with_parallelism(plan.clone(), vec![p; n]);
                encode(&pqp, &cluster, ChainingMode::Auto, &FeatureMask::all())
            })
            .collect();

        let model = ZeroTuneModel::new(ModelConfig { hidden: 16, seed });
        let batched = model.predict_batch(&graphs);
        prop_assert_eq!(batched.len(), graphs.len());
        for (g, b) in graphs.iter().zip(batched.iter()) {
            prop_assert_eq!(model.predict(g), *b);
        }
    }
}
