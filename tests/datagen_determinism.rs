//! Determinism of the sharded data-generation pipeline: the merged
//! dataset must be *bitwise* identical no matter how many worker threads
//! labeled the shards, whether the simulator memo was attached, and
//! whether a run was resumed from shard files on disk.

use std::path::PathBuf;
use std::sync::Arc;
use zerotune::core::datagen::{generate_dataset_report, GenPlan};
use zerotune::core::dataset::{Dataset, GenConfig};
use zerotune::dspsim::SimCache;

const N: usize = 40;
const SEED: u64 = 0xDE7E;
const SHARD: usize = 8;

fn cfg() -> GenConfig {
    GenConfig::seen()
}

/// Canonical byte representation of a dataset — what "bitwise identical"
/// is asserted against.
fn bytes(data: &Dataset) -> String {
    serde_json::to_string(data).expect("dataset serializes")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("zt-datagen-{}-{}", tag, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn worker_count_never_changes_the_bytes() {
    let baseline = {
        let (data, report) =
            generate_dataset_report(&cfg(), N, SEED, &GenPlan::serial().with_shard_size(SHARD));
        assert_eq!(report.workers_used, 1);
        assert_eq!(report.shards, N.div_ceil(SHARD));
        bytes(&data)
    };
    for workers in [2usize, 8] {
        let (data, report) = generate_dataset_report(
            &cfg(),
            N,
            SEED,
            &GenPlan::serial()
                .with_workers(workers)
                .with_shard_size(SHARD),
        );
        // workers are capped by the number of shards, never below 1
        assert!(report.workers_used >= 1 && report.workers_used <= workers);
        assert_eq!(
            bytes(&data),
            baseline,
            "dataset differs at {workers} workers"
        );
    }
}

#[test]
fn simulator_memo_never_changes_the_bytes() {
    let plain =
        generate_dataset_report(&cfg(), N, SEED, &GenPlan::serial().with_shard_size(SHARD)).0;
    let cache = Arc::new(SimCache::default());
    let cached = generate_dataset_report(
        &cfg().with_cache(cache),
        N,
        SEED,
        &GenPlan::serial().with_workers(4).with_shard_size(SHARD),
    )
    .0;
    assert_eq!(bytes(&plain), bytes(&cached));
}

#[test]
fn shard_files_are_identical_at_any_worker_count() {
    let read_all = |dir: &PathBuf| {
        let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
            .expect("shard dir exists")
            .map(|e| {
                let e = e.expect("dir entry");
                (
                    e.file_name().to_string_lossy().into_owned(),
                    std::fs::read(e.path()).expect("shard readable"),
                )
            })
            .collect();
        files.sort();
        files
    };

    let dir_a = temp_dir("shards-w1");
    let dir_b = temp_dir("shards-w8");
    let (data_a, _) = generate_dataset_report(
        &cfg(),
        N,
        SEED,
        &GenPlan::serial()
            .with_shard_size(SHARD)
            .with_shard_dir(dir_a.clone()),
    );
    let (data_b, _) = generate_dataset_report(
        &cfg(),
        N,
        SEED,
        &GenPlan::serial()
            .with_workers(8)
            .with_shard_size(SHARD)
            .with_shard_dir(dir_b.clone()),
    );

    let files_a = read_all(&dir_a);
    let files_b = read_all(&dir_b);
    assert_eq!(files_a.len(), N.div_ceil(SHARD));
    assert_eq!(files_a, files_b, "shard files differ between worker counts");
    assert_eq!(bytes(&data_a), bytes(&data_b));

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn resumed_generation_reuses_shards_and_matches_a_fresh_run() {
    let fresh =
        generate_dataset_report(&cfg(), N, SEED, &GenPlan::serial().with_shard_size(SHARD)).0;

    let dir = temp_dir("resume");
    let plan = GenPlan::serial()
        .with_shard_size(SHARD)
        .with_shard_dir(dir.clone());
    let (_, first) = generate_dataset_report(&cfg(), N, SEED, &plan);
    let total = N.div_ceil(SHARD);
    assert_eq!(first.shards_generated, total);
    assert_eq!(first.shards_resumed, 0);

    // knock out two shards, then resume at a different worker count
    let mut names: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("shard dir")
        .map(|e| e.expect("entry").path())
        .collect();
    names.sort();
    assert_eq!(names.len(), total);
    std::fs::remove_file(&names[1]).unwrap();
    std::fs::remove_file(&names[3]).unwrap();

    let (data, second) = generate_dataset_report(&cfg(), N, SEED, &plan.clone().with_workers(4));
    assert_eq!(second.shards_resumed, total - 2);
    assert_eq!(second.shards_generated, 2);
    assert_eq!(bytes(&data), bytes(&fresh), "resumed run diverged");

    // a config change (different seed) must invalidate the cache, not
    // silently reuse stale shards
    let (other, report) = generate_dataset_report(&cfg(), N, SEED + 1, &plan.with_workers(2));
    assert_eq!(report.shards_resumed, 0);
    assert_ne!(bytes(&other), bytes(&fresh));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn legacy_entry_point_honors_worker_env_var() {
    // generate_dataset reads ZT_DATAGEN_WORKERS via GenPlan::from_env();
    // the output must not depend on it.
    let baseline = bytes(&zerotune::core::dataset::generate_dataset(&cfg(), N, SEED));
    std::env::set_var("ZT_DATAGEN_WORKERS", "3");
    let with_env = bytes(&zerotune::core::dataset::generate_dataset(&cfg(), N, SEED));
    std::env::remove_var("ZT_DATAGEN_WORKERS");
    assert_eq!(baseline, with_env);
}
