//! Cross-validation of the two simulator paths: the analytical
//! steady-state solver (used for labels) and the discrete-event engine
//! (tuples actually flow). They implement the same cost model, so their
//! *orderings* and coarse magnitudes must agree.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zerotune::dspsim::analytical::{simulate, SimConfig};
use zerotune::dspsim::cluster::{Cluster, ClusterType};
use zerotune::dspsim::engine::{run, EngineConfig};
use zerotune::query::operators::*;
use zerotune::query::{DataType, LogicalPlan, OperatorKind, ParallelQueryPlan, TupleSchema};

fn linear(rate: f64, sel: f64, window: f64) -> LogicalPlan {
    let mut plan = LogicalPlan::new("linear");
    let s = plan.add(OperatorKind::Source(SourceOp {
        event_rate: rate,
        schema: TupleSchema::uniform(DataType::Double, 3),
        key_cardinality: None,
    }));
    let f = plan.add(OperatorKind::Filter(FilterOp {
        function: FilterFunction::Gt,
        literal_class: DataType::Double,
        selectivity: sel,
    }));
    let a = plan.add(OperatorKind::Aggregate(AggregateOp {
        window: WindowSpec::tumbling(WindowPolicy::Count, window),
        function: AggFunction::Avg,
        agg_class: DataType::Double,
        key_class: Some(DataType::Int),
        selectivity: 0.2,
        key_cardinality: None,
    }));
    let k = plan.add(OperatorKind::Sink(SinkOp));
    plan.connect(s, f);
    plan.connect(f, a);
    plan.connect(a, k);
    plan
}

/// Two sources feeding a windowed equi-join: `s1, s2 → join(window) → sink`.
fn windowed_join(rate: f64, window: f64, sel: f64) -> LogicalPlan {
    let mut plan = LogicalPlan::new("windowed-join");
    let s1 = plan.add(OperatorKind::Source(SourceOp {
        event_rate: rate,
        schema: TupleSchema::uniform(DataType::Double, 3),
        key_cardinality: None,
    }));
    let s2 = plan.add(OperatorKind::Source(SourceOp {
        event_rate: rate,
        schema: TupleSchema::uniform(DataType::Double, 3),
        key_cardinality: None,
    }));
    let j = plan.add(OperatorKind::Join(JoinOp {
        window: WindowSpec::tumbling(WindowPolicy::Count, window),
        key_class: DataType::Int,
        selectivity: sel,
        key_cardinality: None,
    }));
    let k = plan.add(OperatorKind::Sink(SinkOp));
    plan.connect(s1, j);
    plan.connect(s2, j);
    plan.connect(j, k);
    plan
}

fn cluster() -> Cluster {
    Cluster::homogeneous(ClusterType::M510, 2, 10.0)
}

/// Relative agreement helper: `|a - b| / b < tol`.
fn rel_close(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() / b.abs().max(1e-12) < tol
}

#[test]
fn sustained_rates_agree_without_backpressure() {
    let pqp = ParallelQueryPlan::with_parallelism(linear(4_000.0, 0.5, 10.0), vec![2; 4]);
    let mut rng = StdRng::seed_from_u64(1);
    let a = simulate(&pqp, &cluster(), &SimConfig::noiseless(), &mut rng);
    let e = run(&pqp, &cluster(), &EngineConfig::default(), &mut rng);
    // both report the full offered rate (relative tolerance: the engine
    // counts tuples over a finite measured interval)
    assert!(
        rel_close(a.throughput, 4_000.0, 1e-6),
        "analytical sustained {} ev/s",
        a.throughput
    );
    assert!(
        rel_close(e.source_throughput, 4_000.0, 0.2),
        "engine sustained {} ev/s",
        e.source_throughput
    );
}

#[test]
fn both_paths_rank_window_sizes_identically_for_latency() {
    let mut rng = StdRng::seed_from_u64(2);
    let small = ParallelQueryPlan::with_parallelism(linear(2_000.0, 0.5, 5.0), vec![2; 4]);
    let large = ParallelQueryPlan::with_parallelism(linear(2_000.0, 0.5, 500.0), vec![2; 4]);

    let a_small = simulate(&small, &cluster(), &SimConfig::noiseless(), &mut rng);
    let a_large = simulate(&large, &cluster(), &SimConfig::noiseless(), &mut rng);
    assert!(a_large.latency_ms > a_small.latency_ms);

    let e_small = run(&small, &cluster(), &EngineConfig::default(), &mut rng);
    let e_large = run(&large, &cluster(), &EngineConfig::default(), &mut rng);
    assert!(
        e_large.latency_p50_ms > e_small.latency_p50_ms,
        "engine disagreed: {} vs {}",
        e_large.latency_p50_ms,
        e_small.latency_p50_ms
    );
}

#[test]
fn both_paths_agree_on_selectivity_driven_sink_rates() {
    let mut rng = StdRng::seed_from_u64(3);
    let pqp = ParallelQueryPlan::with_parallelism(linear(5_000.0, 0.4, 10.0), vec![2; 4]);
    let a = simulate(&pqp, &cluster(), &SimConfig::noiseless(), &mut rng);
    let e = run(&pqp, &cluster(), &EngineConfig::default(), &mut rng);
    // sink input rate = rate × filter sel × agg sel = 5000 × 0.4 × 0.2
    let expected = 5_000.0 * 0.4 * 0.2;
    let analytic_sink = a.per_op.last().expect("sink").input_rate;
    assert!(
        (analytic_sink - expected).abs() / expected < 0.05,
        "analytical sink rate {analytic_sink}"
    );
    assert!(
        (e.sink_rate - expected).abs() / expected < 0.5,
        "engine sink rate {} vs expected {expected}",
        e.sink_rate
    );
}

#[test]
fn windowed_join_source_rates_agree_without_backpressure() {
    let pqp = ParallelQueryPlan::with_parallelism(windowed_join(1_500.0, 20.0, 0.05), vec![2; 4]);
    let mut rng = StdRng::seed_from_u64(5);
    let a = simulate(&pqp, &cluster(), &SimConfig::noiseless(), &mut rng);
    let e = run(&pqp, &cluster(), &EngineConfig::default(), &mut rng);
    // two sources at 1500 ev/s each, neither path may throttle them
    assert!(
        rel_close(a.throughput, 3_000.0, 1e-6),
        "analytical sustained {} ev/s",
        a.throughput
    );
    assert!(
        rel_close(e.source_throughput, 3_000.0, 0.2),
        "engine sustained {} ev/s",
        e.source_throughput
    );
    // and both must see sink traffic: the join emits matches
    let analytic_sink = a.per_op.last().expect("sink").input_rate;
    assert!(analytic_sink > 0.0, "analytical join produced nothing");
    assert!(e.sink_rate > 0.0, "engine join produced nothing");
}

#[test]
fn both_paths_rank_join_selectivities_identically() {
    // A more selective join emits fewer matches — both simulator paths
    // must order the sink rates the same way, and agree within a factor
    // (relative, not absolute: absolute join rates depend on window
    // modeling details the two paths implement differently).
    let mut rng = StdRng::seed_from_u64(6);
    let sparse =
        ParallelQueryPlan::with_parallelism(windowed_join(1_500.0, 20.0, 0.02), vec![2; 4]);
    let dense = ParallelQueryPlan::with_parallelism(windowed_join(1_500.0, 20.0, 0.2), vec![2; 4]);

    let a_sparse = simulate(&sparse, &cluster(), &SimConfig::noiseless(), &mut rng);
    let a_dense = simulate(&dense, &cluster(), &SimConfig::noiseless(), &mut rng);
    let a_rate = |m: &zerotune::dspsim::QueryMetrics| m.per_op.last().expect("sink").input_rate;
    assert!(
        a_rate(&a_dense) > a_rate(&a_sparse),
        "analytical ranks selectivities wrong: {} vs {}",
        a_rate(&a_sparse),
        a_rate(&a_dense)
    );

    let e_sparse = run(&sparse, &cluster(), &EngineConfig::default(), &mut rng);
    let e_dense = run(&dense, &cluster(), &EngineConfig::default(), &mut rng);
    assert!(
        e_dense.sink_rate > e_sparse.sink_rate,
        "engine ranks selectivities wrong: {} vs {}",
        e_sparse.sink_rate,
        e_dense.sink_rate
    );

    // cross-path agreement on the dense case, relative tolerance
    assert!(
        rel_close(e_dense.sink_rate, a_rate(&a_dense), 0.9),
        "join sink rates diverge: engine {} vs analytical {}",
        e_dense.sink_rate,
        a_rate(&a_dense)
    );
}

#[test]
fn both_paths_rank_join_window_sizes_identically_for_latency() {
    // Absolute join latencies are incomparable across the two paths (the
    // engine timestamps tuples at window emission; the analytical model
    // charges the full expected residence), but a larger join window must
    // mean higher latency in *both*.
    let mut rng = StdRng::seed_from_u64(7);
    let small = ParallelQueryPlan::with_parallelism(windowed_join(2_000.0, 50.0, 0.1), vec![2; 4]);
    let large =
        ParallelQueryPlan::with_parallelism(windowed_join(2_000.0, 1_000.0, 0.1), vec![2; 4]);

    let a_small = simulate(&small, &cluster(), &SimConfig::noiseless(), &mut rng);
    let a_large = simulate(&large, &cluster(), &SimConfig::noiseless(), &mut rng);
    assert!(
        a_large.latency_ms > a_small.latency_ms,
        "analytical disagreed: {} vs {}",
        a_large.latency_ms,
        a_small.latency_ms
    );

    let e_small = run(&small, &cluster(), &EngineConfig::default(), &mut rng);
    let e_large = run(&large, &cluster(), &EngineConfig::default(), &mut rng);
    assert!(
        e_large.latency_p50_ms > e_small.latency_p50_ms,
        "engine disagreed: {} vs {}",
        e_large.latency_p50_ms,
        e_small.latency_p50_ms
    );
}

#[test]
fn engine_latency_same_ballpark_as_analytical() {
    // The discrete-event engine does not model exchange buffer batching
    // (the analytical path's dominant term for lightly loaded channels:
    // up to the 100 ms flush timeout per hop), so only coarse agreement
    // is expected — same ballpark, not the same number.
    let mut rng = StdRng::seed_from_u64(4);
    let pqp = ParallelQueryPlan::with_parallelism(linear(5_000.0, 0.5, 25.0), vec![2; 4]);
    let a = simulate(&pqp, &cluster(), &SimConfig::noiseless(), &mut rng);
    let e = run(&pqp, &cluster(), &EngineConfig::default(), &mut rng);
    let ratio = a.latency_ms / e.latency_p50_ms;
    assert!(
        (0.02..=50.0).contains(&ratio),
        "paths diverge: analytical {} ms vs engine {} ms",
        a.latency_ms,
        e.latency_p50_ms
    );
}
