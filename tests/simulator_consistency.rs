//! Cross-validation of the two simulator paths: the analytical
//! steady-state solver (used for labels) and the discrete-event engine
//! (tuples actually flow). They implement the same cost model, so their
//! *orderings* and coarse magnitudes must agree.

use rand::rngs::StdRng;
use rand::SeedableRng;
use zerotune::dspsim::analytical::{simulate, SimConfig};
use zerotune::dspsim::cluster::{Cluster, ClusterType};
use zerotune::dspsim::engine::{run, EngineConfig};
use zerotune::query::operators::*;
use zerotune::query::{DataType, LogicalPlan, OperatorKind, ParallelQueryPlan, TupleSchema};

fn linear(rate: f64, sel: f64, window: f64) -> LogicalPlan {
    let mut plan = LogicalPlan::new("linear");
    let s = plan.add(OperatorKind::Source(SourceOp {
        event_rate: rate,
        schema: TupleSchema::uniform(DataType::Double, 3),
    }));
    let f = plan.add(OperatorKind::Filter(FilterOp {
        function: FilterFunction::Gt,
        literal_class: DataType::Double,
        selectivity: sel,
    }));
    let a = plan.add(OperatorKind::Aggregate(AggregateOp {
        window: WindowSpec::tumbling(WindowPolicy::Count, window),
        function: AggFunction::Avg,
        agg_class: DataType::Double,
        key_class: Some(DataType::Int),
        selectivity: 0.2,
    }));
    let k = plan.add(OperatorKind::Sink(SinkOp));
    plan.connect(s, f);
    plan.connect(f, a);
    plan.connect(a, k);
    plan
}

fn cluster() -> Cluster {
    Cluster::homogeneous(ClusterType::M510, 2, 10.0)
}

#[test]
fn sustained_rates_agree_without_backpressure() {
    let pqp = ParallelQueryPlan::with_parallelism(linear(4_000.0, 0.5, 10.0), vec![2; 4]);
    let mut rng = StdRng::seed_from_u64(1);
    let a = simulate(&pqp, &cluster(), &SimConfig::noiseless(), &mut rng);
    let e = run(&pqp, &cluster(), &EngineConfig::default(), &mut rng);
    // both report the full offered rate
    assert!((a.throughput - 4_000.0).abs() < 1.0);
    assert!(
        (e.source_throughput - 4_000.0).abs() / 4_000.0 < 0.2,
        "engine sustained {} ev/s",
        e.source_throughput
    );
}

#[test]
fn both_paths_rank_window_sizes_identically_for_latency() {
    let mut rng = StdRng::seed_from_u64(2);
    let small = ParallelQueryPlan::with_parallelism(linear(2_000.0, 0.5, 5.0), vec![2; 4]);
    let large = ParallelQueryPlan::with_parallelism(linear(2_000.0, 0.5, 500.0), vec![2; 4]);

    let a_small = simulate(&small, &cluster(), &SimConfig::noiseless(), &mut rng);
    let a_large = simulate(&large, &cluster(), &SimConfig::noiseless(), &mut rng);
    assert!(a_large.latency_ms > a_small.latency_ms);

    let e_small = run(&small, &cluster(), &EngineConfig::default(), &mut rng);
    let e_large = run(&large, &cluster(), &EngineConfig::default(), &mut rng);
    assert!(
        e_large.latency_p50_ms > e_small.latency_p50_ms,
        "engine disagreed: {} vs {}",
        e_large.latency_p50_ms,
        e_small.latency_p50_ms
    );
}

#[test]
fn both_paths_agree_on_selectivity_driven_sink_rates() {
    let mut rng = StdRng::seed_from_u64(3);
    let pqp = ParallelQueryPlan::with_parallelism(linear(5_000.0, 0.4, 10.0), vec![2; 4]);
    let a = simulate(&pqp, &cluster(), &SimConfig::noiseless(), &mut rng);
    let e = run(&pqp, &cluster(), &EngineConfig::default(), &mut rng);
    // sink input rate = rate × filter sel × agg sel = 5000 × 0.4 × 0.2
    let expected = 5_000.0 * 0.4 * 0.2;
    let analytic_sink = a.per_op.last().expect("sink").input_rate;
    assert!(
        (analytic_sink - expected).abs() / expected < 0.05,
        "analytical sink rate {analytic_sink}"
    );
    assert!(
        (e.sink_rate - expected).abs() / expected < 0.5,
        "engine sink rate {} vs expected {expected}",
        e.sink_rate
    );
}

#[test]
fn engine_latency_same_ballpark_as_analytical() {
    // The discrete-event engine does not model exchange buffer batching
    // (the analytical path's dominant term for lightly loaded channels:
    // up to the 100 ms flush timeout per hop), so only coarse agreement
    // is expected — same ballpark, not the same number.
    let mut rng = StdRng::seed_from_u64(4);
    let pqp = ParallelQueryPlan::with_parallelism(linear(5_000.0, 0.5, 25.0), vec![2; 4]);
    let a = simulate(&pqp, &cluster(), &SimConfig::noiseless(), &mut rng);
    let e = run(&pqp, &cluster(), &EngineConfig::default(), &mut rng);
    let ratio = a.latency_ms / e.latency_p50_ms;
    assert!(
        (0.02..=50.0).contains(&ratio),
        "paths diverge: analytical {} ms vs engine {} ms",
        a.latency_ms,
        e.latency_p50_ms
    );
}
