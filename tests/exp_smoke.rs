//! Smoke tests for the six experiment binaries' library entry points:
//! run each on a tiny [`Scale`] with telemetry in trace mode, then
//! assert the run succeeded and the recorded trace exports to parseable
//! Chrome-trace JSON (written to a temp file and read back, mirroring
//! the `--telemetry=PATH` flow of the binaries).
//!
//! The telemetry registry is process-global, so the tests serialize
//! behind one mutex and always restore `Mode::Off`.

use std::path::PathBuf;
use std::sync::Mutex;

use zerotune::core::telemetry::{self, ChromeTrace, Mode};
use zerotune::experiments::Scale;

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn tiny(seed: u64) -> Scale {
    Scale {
        name: "tiny",
        train_queries: 120,
        test_per_group: 8,
        epochs: 4,
        hidden: 16,
        seed,
    }
}

fn trace_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("zt-smoke-{}-{}.json", tag, std::process::id()))
}

/// Run `body` with telemetry tracing, then round-trip the snapshot
/// through a trace file on disk and return the parsed trace.
fn smoke<T>(tag: &str, body: impl FnOnce() -> T) -> (T, ChromeTrace, telemetry::Snapshot) {
    let _l = lock();
    telemetry::set_mode(Mode::Trace);
    telemetry::reset();
    let out = body();
    let snap = telemetry::snapshot();
    telemetry::set_mode(Mode::Off);
    telemetry::reset();

    let path = trace_path(tag);
    std::fs::write(&path, snap.chrome_trace_json()).expect("trace file writes");
    let json = std::fs::read_to_string(&path).expect("trace file reads");
    let _ = std::fs::remove_file(&path);
    let trace = ChromeTrace::from_json(&json).expect("trace JSON parses");
    assert!(!trace.events.is_empty(), "{tag}: empty trace");
    (out, trace, snap)
}

#[test]
fn exp1_accuracy_smoke_traces() {
    let (res, _, snap) = smoke("exp1", || zerotune::experiments::exp1::run(&tiny(0xE1)));
    assert!(!res.table4.is_empty());
    assert!(snap.counters["train.epochs"] >= 4);
}

#[test]
fn exp2_parallelism_smoke_traces() {
    let (res, _, _) = smoke("exp2", || zerotune::experiments::exp2::run(&tiny(0xE2)));
    assert!(!res.categories.is_empty());
}

#[test]
fn exp3_parameters_smoke_traces() {
    let (res, _, _) = smoke("exp3", || zerotune::experiments::exp3::run(&tiny(0xE3)));
    assert!(!res.rows.is_empty());
}

#[test]
fn exp4_efficiency_smoke_traces() {
    let (res, _, snap) = smoke("exp4", || zerotune::experiments::exp4::run(&tiny(0xE4)));
    assert!(!res.rows.is_empty());
    assert!(snap.counters["datagen.samples"] > 0);
}

#[test]
fn exp5_optimizer_smoke_traces() {
    // Mirrors the PR acceptance criterion: the exp5 trace must contain
    // spans for datagen shards, training epochs, and candidate scoring.
    let (res, trace, snap) = smoke("exp5", || zerotune::experiments::exp5::run(&tiny(0xE5)));
    assert!(!res.rows.is_empty());
    let paths = snap.span_paths();
    for needle in ["datagen.shard", "train/train.epoch", "tune/tune.score"] {
        assert!(
            paths.iter().any(|p| p.contains(needle)),
            "exp5 trace lacks `{needle}` spans; got {} paths",
            paths.len()
        );
    }
    assert!(snap.counters["tune.candidates"] > 0);
    assert!(trace.events.iter().any(|e| e.ph == 'C'));
}

#[test]
fn exp6_ablation_smoke_traces() {
    let (res, _, _) = smoke("exp6", || zerotune::experiments::exp6::run(&tiny(0xE6)));
    assert!(!res.rows.is_empty());
}

#[test]
fn fig3_microbench_smoke_traces() {
    let (res, _, snap) = smoke("fig3", || zerotune::experiments::fig3::run(1000.0, 2));
    assert!(!res.points.is_empty());
    assert!(snap.counters["sim.solves"] > 0);
}
