//! Property-based integration tests: invariants that must hold for *any*
//! generated workload, cluster and parallelism assignment.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zerotune::core::features::FeatureMask;
use zerotune::core::graph::encode;
use zerotune::core::optisample::EnumerationStrategy;
use zerotune::core::qerror::q_error;
use zerotune::dspsim::analytical::{simulate, SimConfig};
use zerotune::dspsim::cluster::{Cluster, ClusterType};
use zerotune::dspsim::placement::{place, ChainingMode};
use zerotune::query::{ParallelQueryPlan, QueryGenerator, QueryStructure};

fn structure_from_index(i: u8) -> QueryStructure {
    match i % 8 {
        0 => QueryStructure::Linear,
        1 => QueryStructure::TwoWayJoin,
        2 => QueryStructure::ThreeWayJoin,
        3 => QueryStructure::ChainedFilters(2 + i % 3),
        4 => QueryStructure::NWayJoin(4 + i % 3),
        5 => QueryStructure::SpikeDetection,
        6 => QueryStructure::SmartGridLocal,
        _ => QueryStructure::SmartGridGlobal,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any structure × any OptiSample/random assignment yields a valid
    /// PQP whose simulation produces finite positive metrics and a
    /// throughput bounded by the offered rate.
    #[test]
    fn simulation_is_always_well_formed(
        structure_idx in 0u8..8,
        seed in 0u64..10_000,
        workers in 1usize..6,
        random_strategy in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let structure = structure_from_index(structure_idx);
        let generator = if structure.is_seen() {
            QueryGenerator::seen()
        } else {
            QueryGenerator::unseen()
        };
        let plan = generator.generate(structure, &mut rng);
        prop_assert!(plan.validate().is_ok());

        let cluster = Cluster::sample(&ClusterType::ALL, workers, &[1.0, 10.0], &mut rng);
        let strategy = if random_strategy {
            EnumerationStrategy::random()
        } else {
            EnumerationStrategy::opti_sample()
        };
        let parallelism = strategy.assign(&plan, &cluster, &mut rng);
        // Eq. 1 constraints
        prop_assert!(parallelism.iter().all(|&p| p >= 1));
        prop_assert!(parallelism.iter().all(|&p| p <= cluster.total_cores()));

        let pqp = ParallelQueryPlan::with_parallelism(plan, parallelism);
        prop_assert!(pqp.validate().is_ok());

        let metrics = simulate(&pqp, &cluster, &SimConfig::noiseless(), &mut rng);
        prop_assert!(metrics.latency_ms.is_finite() && metrics.latency_ms > 0.0);
        prop_assert!(metrics.throughput.is_finite() && metrics.throughput > 0.0);
        prop_assert!(metrics.throughput <= metrics.offered_rate * 1.0001);
        prop_assert!(metrics.backpressure_scale > 0.0 && metrics.backpressure_scale <= 1.0);
        // rates never increase along the pipeline beyond physical limits
        for op in &metrics.per_op {
            prop_assert!(op.input_rate.is_finite() && op.input_rate >= 0.0);
            prop_assert!(op.utilization.is_finite() && op.utilization >= 0.0);
        }
    }

    /// Graph encodings are structurally sound for any workload: feature
    /// vectors are finite, mapping weights per operator sum to 1, and the
    /// sink is an operator node.
    #[test]
    fn graph_encoding_invariants(
        structure_idx in 0u8..8,
        seed in 0u64..10_000,
        p in 1u32..64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let structure = structure_from_index(structure_idx);
        let generator = QueryGenerator::seen();
        let plan = generator.generate(structure, &mut rng);
        let n = plan.num_ops();
        let pqp = ParallelQueryPlan::with_parallelism(plan, vec![p; n]);
        let cluster = Cluster::homogeneous(ClusterType::M510, 3, 10.0);
        let graph = encode(&pqp, &cluster, ChainingMode::Auto, &FeatureMask::all());

        prop_assert_eq!(graph.num_operator_nodes(), n);
        prop_assert!(graph.sink < n);
        for node in &graph.nodes {
            prop_assert!(node.features.iter().all(|f| f.is_finite()));
        }
        for op in 0..n {
            let total: f32 = graph
                .mapping
                .iter()
                .filter(|&&(_, o, _)| o == op)
                .map(|&(_, _, w)| w)
                .sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
        }
    }

    /// Chaining never *increases* the number of deployed tasks, and the
    /// grouping number is consistent with the group partition.
    #[test]
    fn placement_invariants(
        seed in 0u64..10_000,
        p in 1u32..64,
        workers in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let plan = QueryGenerator::seen().generate(QueryStructure::Linear, &mut rng);
        let n = plan.num_ops();
        let pqp = ParallelQueryPlan::with_parallelism(plan, vec![p; n]);
        let cluster = Cluster::homogeneous(ClusterType::M510, workers, 10.0);

        let never = place(&pqp, &cluster, ChainingMode::Never);
        let always = place(&pqp, &cluster, ChainingMode::Always);
        prop_assert!(always.total_instances() <= never.total_instances());
        // groups partition the operators
        let total_ops: usize = always.groups.iter().map(|g| g.ops.len()).sum();
        prop_assert_eq!(total_ops, n);
        for op in pqp.plan.ops() {
            let g = always.grouping_number(op.id) as usize;
            prop_assert!(g >= 1 && g <= n);
        }
    }

    /// Q-error is symmetric, ≥ 1, and multiplicative.
    #[test]
    fn q_error_properties(a in 1e-6f64..1e9, b in 1e-6f64..1e9) {
        let q = q_error(a, b);
        prop_assert!(q >= 1.0);
        prop_assert!((q - q_error(b, a)).abs() < 1e-9 * q);
        // scaling both by the same factor leaves q unchanged
        let q2 = q_error(a * 7.5, b * 7.5);
        prop_assert!((q - q2).abs() < 1e-6 * q);
    }
}
