//! Sealed plan-IR invariants and the multi-sink end-to-end pipeline.
//!
//! Property-tested over the full generator workload: the cached Kahn
//! order is a valid, deterministic linear extension that matches the
//! slow-path recomputation bitwise; CSR neighbor lists agree with the
//! edge-list scans; and the structural fingerprint is invariant under
//! edge-insertion reordering. The end-to-end test drives the repo's
//! multi-sink shared-subplan benchmark through lint → bounds → simulate
//! → predict → tune.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zerotune::query::{LogicalPlan, ParallelQueryPlan, QueryGenerator, QueryStructure};

fn structure_from_index(i: u8) -> QueryStructure {
    match i % 8 {
        0 => QueryStructure::Linear,
        1 => QueryStructure::TwoWayJoin,
        2 => QueryStructure::ThreeWayJoin,
        3 => QueryStructure::ChainedFilters(2 + i % 3),
        4 => QueryStructure::NWayJoin(4 + i % 3),
        5 => QueryStructure::SpikeDetection,
        6 => QueryStructure::SmartGridLocal,
        _ => QueryStructure::SmartGridGlobal,
    }
}

fn generated_plan(structure_idx: u8, seed: u64) -> LogicalPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let structure = structure_from_index(structure_idx);
    let generator = if structure.is_seen() {
        QueryGenerator::seen()
    } else {
        QueryGenerator::unseen()
    };
    generator.generate(structure, &mut rng)
}

/// Rebuild `plan` with the identical operator list but the edge list
/// rotated by `rot` insertion positions.
fn rebuild_with_rotated_edges(plan: &LogicalPlan, rot: usize) -> LogicalPlan {
    let mut p = LogicalPlan::new(plan.name.clone());
    for op in plan.ops() {
        p.add(op.kind.clone());
    }
    let edges = plan.edges();
    let n = edges.len();
    for k in 0..n {
        let (u, d) = edges[(k + rot) % n];
        p.connect(u, d);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sealed topo order visits every operator exactly once, puts
    /// every edge forward, is deterministic across re-sealing, and is
    /// bitwise the slow-path `LogicalPlan::topo_order`.
    #[test]
    fn topo_order_is_a_deterministic_linear_extension(
        structure_idx in 0u8..8,
        seed in 0u64..10_000,
    ) {
        let plan = generated_plan(structure_idx, seed);
        let ir = plan.validate().expect("generated plans are valid");

        let mut pos = vec![usize::MAX; plan.num_ops()];
        for (k, id) in ir.topo_order().iter().enumerate() {
            prop_assert_eq!(pos[id.idx()], usize::MAX);
            pos[id.idx()] = k;
        }
        prop_assert!(pos.iter().all(|&p| p != usize::MAX));
        for &(u, d) in plan.edges() {
            prop_assert!(
                pos[u.idx()] < pos[d.idx()],
                "edge {:?}->{:?} violates the topo order", u, d
            );
        }

        let ir2 = plan.validate().unwrap();
        prop_assert_eq!(ir.topo_order(), ir2.topo_order());
        prop_assert_eq!(ir.fingerprint(), ir2.fingerprint());
        prop_assert_eq!(
            ir.topo_order().to_vec(),
            plan.topo_order().expect("acyclic")
        );
    }

    /// CSR adjacency slices agree with the slow-path edge-list scans, and
    /// the parallel edge-index arrays point at the right edge records.
    #[test]
    fn csr_neighbors_match_the_edge_list(
        structure_idx in 0u8..8,
        seed in 0u64..10_000,
    ) {
        let plan = generated_plan(structure_idx, seed);
        let ir = plan.validate().expect("generated plans are valid");
        for op in plan.ops() {
            prop_assert_eq!(ir.upstream(op.id), &plan.upstream(op.id)[..]);
            prop_assert_eq!(ir.downstream(op.id), &plan.downstream(op.id)[..]);
            for (&u, &e) in ir.upstream(op.id).iter().zip(ir.upstream_edges(op.id)) {
                prop_assert_eq!(plan.edges()[e as usize], (u, op.id));
            }
            for (&d, &e) in ir.downstream(op.id).iter().zip(ir.downstream_edges(op.id)) {
                prop_assert_eq!(plan.edges()[e as usize], (op.id, d));
            }
        }
    }

    /// The structural fingerprint depends on the edge *set*, not the edge
    /// insertion order — while schemas and join semantics may differ, the
    /// fingerprint and depth metadata must not.
    #[test]
    fn fingerprint_is_invariant_under_edge_insertion_order(
        structure_idx in 0u8..8,
        seed in 0u64..10_000,
        rot in 1usize..7,
    ) {
        let plan = generated_plan(structure_idx, seed);
        prop_assert!(plan.edges().len() >= 2, "every generated plan has at least 2 edges");
        let rotated = rebuild_with_rotated_edges(&plan, rot % plan.edges().len());
        let a = plan.validate().expect("original is valid");
        let b = rotated.validate().expect("rotated edge order is still a valid DAG");
        prop_assert_eq!(a.fingerprint(), b.fingerprint());
        prop_assert_eq!(a.depth(), b.depth());
        prop_assert_eq!(a.sinks(), b.sinks());
        prop_assert_eq!(a.sources(), b.sources());
    }
}

/// The multi-sink shared-subplan benchmark runs through the whole stack:
/// lint → bounds → simulate → predict → tune.
#[test]
fn multi_sink_plan_runs_end_to_end() {
    use zerotune::core::dataset::{generate_dataset, GenConfig};
    use zerotune::core::model::{ModelConfig, ZeroTuneModel};
    use zerotune::core::optimizer::{tune, OptimizerConfig};
    use zerotune::core::train::{train, TrainConfig};
    use zerotune::core::CostEstimator;
    use zerotune::dspsim::analytical::{simulate, SimConfig};
    use zerotune::dspsim::cluster::{Cluster, ClusterType};

    let plan = zerotune::query::benchmarks::smart_grid_combined(5_000.0);
    let n = plan.num_ops();
    let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);

    // 1. Lint: the plan and a concrete deployment are clean.
    let pqp = ParallelQueryPlan::with_parallelism(plan.clone(), vec![2; n]);
    let diags = zerotune::core::diagnostics::lint_pqp(&pqp, Some(&cluster));
    assert!(
        diags
            .iter()
            .all(|d| d.severity != zerotune::core::diagnostics::Severity::Error),
        "{diags:?}"
    );

    // 2. Bounds: well-formed report with one latency bracket per sink.
    let report = zerotune::core::bounds::analyze(
        &pqp,
        &cluster,
        &zerotune::core::bounds::BoundsConfig::default(),
    );
    assert!(report.is_wellformed(), "{report:?}");
    assert_eq!(report.latency_per_sink_ms.len(), 2);

    // 3. Simulate: per-sink latencies inside the brackets.
    let mut rng = StdRng::seed_from_u64(11);
    let m = simulate(&pqp, &cluster, &SimConfig::noiseless(), &mut rng);
    assert_eq!(m.latency_per_sink_ms.len(), 2);
    assert!(report.latency_ms.contains(m.latency_ms));
    for (iv, &l) in report
        .latency_per_sink_ms
        .iter()
        .zip(&m.latency_per_sink_ms)
    {
        assert!(iv.contains(l), "per-sink latency {l} outside {iv:?}");
    }

    // 4. Predict: the GNN encodes and scores the multi-sink graph.
    let data = generate_dataset(&GenConfig::seen(), 200, 21);
    let (train_set, _, _) = data.split(0.9, 0.1, 0);
    let mut model = ZeroTuneModel::new(ModelConfig {
        hidden: 16,
        seed: 21,
    });
    train(
        &mut model,
        &train_set,
        &TrainConfig {
            epochs: 10,
            patience: 0,
            ..TrainConfig::default()
        },
    );
    let enc = zerotune::core::graph::encode(
        &pqp,
        &cluster,
        zerotune::dspsim::ChainingMode::Auto,
        &zerotune::core::FeatureMask::default(),
    );
    let pred = model.predict(&enc);
    assert!(pred.latency_ms.is_finite() && pred.latency_ms > 0.0);
    assert!(pred.throughput.is_finite() && pred.throughput > 0.0);

    // 5. Tune: a feasible parallelism assignment for the multi-sink plan.
    let outcome = tune(&model, &plan, &cluster, &OptimizerConfig::default()).expect("valid plan");
    assert_eq!(outcome.parallelism.len(), n);
    assert!(outcome
        .parallelism
        .iter()
        .all(|&p| p >= 1 && p <= cluster.total_cores()));
    let chosen = ParallelQueryPlan::with_parallelism(plan, outcome.parallelism);
    let m2 = simulate(&chosen, &cluster, &SimConfig::noiseless(), &mut rng);
    assert!(m2.latency_ms.is_finite() && m2.throughput > 0.0);
    assert_eq!(m2.latency_per_sink_ms.len(), 2);
}
