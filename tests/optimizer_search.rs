//! Property-based soundness of the bounds-guided branch-and-bound lattice
//! search: `tune` with `SearchSpace::Lattice` must return the *identical*
//! winner whether the search prunes (branch-and-bound over certificates)
//! or scores the lattice exhaustively — outcome equivalence is the load-
//! bearing invariant, speed is only allowed on top of it.
//!
//! Three layers:
//!
//! * **winner equivalence** — proptest over generator-seeded plans of
//!   every structure class: B&B and exhaustive scoring agree on the chosen
//!   parallelism and both predictions, and B&B never analyzes more leaves
//!   than the lattice holds;
//! * **pruning soundness** — the exhaustive winner is always *in* the
//!   branch-and-bound analyzed set (no pruned subtree can contain the
//!   argmin), checked against `branch_and_bound` directly;
//! * **error contract** — degenerate inputs return structured
//!   [`TuneError`]s (invalid plan, exhausted search budget) instead of
//!   panicking, with stable `Display` text.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zerotune::core::lattice::{branch_and_bound, ParallelismLattice};
use zerotune::core::model::{ModelConfig, ZeroTuneModel};
use zerotune::core::optimizer::{
    enumerate_candidates, tune, OptimizerConfig, SearchSpace, TuneError,
};
use zerotune::dspsim::cluster::{Cluster, ClusterType};
use zerotune::query::{LogicalPlan, QueryGenerator, QueryStructure};

fn structure_from_index(i: u8) -> QueryStructure {
    match i % 8 {
        0 => QueryStructure::Linear,
        1 => QueryStructure::TwoWayJoin,
        2 => QueryStructure::ThreeWayJoin,
        3 => QueryStructure::ChainedFilters(2 + i % 3),
        4 => QueryStructure::NWayJoin(4 + i % 3),
        5 => QueryStructure::SpikeDetection,
        6 => QueryStructure::SmartGridLocal,
        _ => QueryStructure::SmartGridGlobal,
    }
}

fn generated_plan(structure_idx: u8, seed: u64) -> LogicalPlan {
    let mut rng = StdRng::seed_from_u64(seed);
    let structure = structure_from_index(structure_idx);
    let generator = if structure.is_seen() {
        QueryGenerator::seen()
    } else {
        QueryGenerator::unseen()
    };
    generator.generate(structure, &mut rng)
}

fn lattice_cfg(prune: bool) -> OptimizerConfig {
    OptimizerConfig {
        strict: false,
        prune,
        search: SearchSpace::Lattice {
            max_degrees_per_op: 2,
            visit_budget: 4_000_000,
        },
        ..OptimizerConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Acceptance criterion: on any generator-seeded plan the
    /// branch-and-bound search returns the same winner — parallelism and
    /// both predictions — as scoring every lattice point.
    #[test]
    fn bnb_matches_exhaustive_winner_on_generated_plans(
        structure_idx in 0u8..8,
        seed in 0u64..10_000,
        workers in 2usize..5,
    ) {
        let plan = generated_plan(structure_idx, seed);
        let cluster = Cluster::homogeneous(ClusterType::M510, workers, 10.0);
        let model = ZeroTuneModel::new(ModelConfig { hidden: 12, seed });

        let bnb = tune(&model, &plan, &cluster, &lattice_cfg(true))
            .expect("generated plans are valid");
        let full = tune(&model, &plan, &cluster, &lattice_cfg(false))
            .expect("generated plans are valid");

        prop_assert_eq!(&bnb.parallelism, &full.parallelism);
        prop_assert_eq!(bnb.predicted_latency_ms.to_bits(), full.predicted_latency_ms.to_bits());
        prop_assert_eq!(bnb.predicted_throughput.to_bits(), full.predicted_throughput.to_bits());
        prop_assert_eq!(bnb.search_space, full.search_space);
        // The search may skip leaves but can never invent them.
        prop_assert!(bnb.search_visited <= bnb.search_space);
        prop_assert_eq!(full.search_visited, full.search_space);
    }

    /// Pruning soundness against the search core directly: whatever
    /// parallelism exhaustive scoring crowns, the branch-and-bound walk
    /// must have analyzed it — a certificate that cuts the argmin's
    /// subtree would be unsound.
    #[test]
    fn pruned_subtrees_never_contain_the_exhaustive_argmin(
        structure_idx in 0u8..8,
        seed in 0u64..10_000,
    ) {
        let plan = generated_plan(structure_idx, seed);
        let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
        let model = ZeroTuneModel::new(ModelConfig { hidden: 12, seed });
        let cfg = lattice_cfg(true);

        let ir = plan.validate().expect("generated plans are valid");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let flat = enumerate_candidates(&plan, &cluster, &cfg, &mut rng);
        let lattice = ParallelismLattice::from_candidates(&flat, 2);
        let bcfg = zerotune::core::bounds::BoundsConfig {
            chaining: cfg.chaining,
            ..zerotune::core::bounds::BoundsConfig::default()
        };
        let search = branch_and_bound(&plan, &ir, &cluster, &bcfg, &lattice, 4_000_000);
        prop_assert!(!search.budget_exhausted);

        let winner = tune(&model, &plan, &cluster, &lattice_cfg(false))
            .expect("generated plans are valid")
            .parallelism;
        if search.feasible_found {
            prop_assert!(
                search.analyzed.iter().any(|(cand, _)| *cand == winner),
                "exhaustive argmin {:?} was inside a pruned subtree", winner
            );
        }
        // Sanity on the walk's own accounting.
        prop_assert_eq!(search.analyzed.len() as u64, search.stats.leaves_analyzed);
        prop_assert!(search.stats.leaves_analyzed <= lattice.size());
    }
}

// ---------------------------------------------------------------------
// Error contract: degenerate configurations are typed errors, not panics.
// ---------------------------------------------------------------------

/// A plan that never gained a sink fails validation inside `tune` and
/// comes back as `TuneError::InvalidPlan` — the pre-PR behavior was an
/// assertion panic deep in candidate enumeration.
#[test]
fn tune_on_sinkless_plan_is_a_structured_error() {
    use zerotune::query::operators::{FilterFunction, FilterOp, SourceOp};
    use zerotune::query::{DataType, OperatorKind, TupleSchema};

    let mut plan = LogicalPlan::new("no-sink");
    let s = plan.add(OperatorKind::Source(SourceOp {
        event_rate: 1_000.0,
        schema: TupleSchema::uniform(DataType::Int, 3),
        key_cardinality: None,
    }));
    let f = plan.add(OperatorKind::Filter(FilterOp {
        function: FilterFunction::Gt,
        literal_class: DataType::Int,
        selectivity: 0.5,
    }));
    plan.connect(s, f);

    let cluster = Cluster::homogeneous(ClusterType::M510, 2, 10.0);
    let model = ZeroTuneModel::new(ModelConfig { hidden: 8, seed: 1 });
    let err = tune(&model, &plan, &cluster, &OptimizerConfig::default())
        .expect_err("a sinkless plan must not tune");
    assert!(matches!(err, TuneError::InvalidPlan(_)));
    let msg = err.to_string();
    assert!(msg.contains("valid plan"), "unexpected message: {msg}");
    assert!(
        std::error::Error::source(&err).is_some(),
        "InvalidPlan must expose the PlanError as its source"
    );
}

/// A lattice bigger than its visit budget is refused with the sizes in
/// the error, never answered from a partial (non-equivalent) walk.
#[test]
fn tune_with_tiny_budget_reports_budget_exhaustion() {
    let plan = zerotune::query::benchmarks::spike_detection(2_000_000.0);
    let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
    let model = ZeroTuneModel::new(ModelConfig { hidden: 8, seed: 1 });
    let cfg = OptimizerConfig {
        strict: false,
        search: SearchSpace::Lattice {
            max_degrees_per_op: 4,
            visit_budget: 2,
        },
        ..OptimizerConfig::default()
    };
    let err = tune(&model, &plan, &cluster, &cfg).expect_err("budget of 2 must exhaust");
    match &err {
        TuneError::SearchBudgetExceeded { space, budget, .. } => {
            assert_eq!(*budget, 2);
            assert!(*space > 2, "space {space} should exceed the budget");
        }
        other => panic!("expected SearchBudgetExceeded, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("budget"), "unexpected message: {msg}");
}
