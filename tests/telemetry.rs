//! Telemetry golden-trace and overhead tests.
//!
//! * **Golden trace** — the same seeded mini train+tune pipeline run
//!   twice with telemetry on must produce the identical canonical form
//!   (span tree structure, span/counter names, counter values — never
//!   durations), and the canonical form must not depend on the datagen
//!   worker count (PR 2's determinism contract lifted to telemetry).
//! * **Overhead / non-interference** — with `ZT_TELEMETRY=off` (and in
//!   fact in *any* mode) the generated datasets and trained model
//!   weights are bitwise identical: telemetry never touches an RNG
//!   stream or a label.
//!
//! The registry is process-global, so every test here serializes behind
//! one mutex and resets at quiescent points.

use std::sync::Mutex;

use rand::rngs::StdRng;
use rand::SeedableRng;
use zerotune::core::datagen::{generate_dataset_with, GenPlan};
use zerotune::core::dataset::GenConfig;
use zerotune::core::model::{ModelConfig, ZeroTuneModel};
use zerotune::core::optimizer::{tune, OptimizerConfig};
use zerotune::core::telemetry::{self, Mode};
use zerotune::core::train::{train, TrainConfig};
use zerotune::dspsim::cluster::{Cluster, ClusterType};
use zerotune::query::{QueryGenerator, QueryStructure};

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn mini_train_cfg() -> TrainConfig {
    TrainConfig {
        epochs: 3,
        batch_size: 8,
        patience: 0,
        seed: 7,
        ..TrainConfig::default()
    }
}

/// One seeded mini pipeline: sharded datagen → train → tune.
fn run_pipeline(datagen_workers: usize) -> (String, telemetry::Snapshot) {
    telemetry::reset();
    let cfg = GenConfig::seen();
    let plan = GenPlan::serial()
        .with_workers(datagen_workers)
        .with_shard_size(8);
    let data = generate_dataset_with(&cfg, 24, 0x90_1D, &plan);

    let mut model = ZeroTuneModel::new(ModelConfig {
        hidden: 16,
        seed: 1,
    });
    train(&mut model, &data, &mini_train_cfg());

    let mut rng = StdRng::seed_from_u64(3);
    let query = QueryGenerator::seen().generate(QueryStructure::Linear, &mut rng);
    let cluster = Cluster::homogeneous(ClusterType::M510, 2, 10.0);
    let _ = tune(&model, &query, &cluster, &OptimizerConfig::default()).expect("valid plan");

    let snap = telemetry::snapshot();
    (snap.canonical(), snap)
}

#[test]
fn golden_trace_is_identical_across_runs() {
    let _l = lock();
    telemetry::set_mode(Mode::Trace);
    let (first, snap) = run_pipeline(1);
    let (second, _) = run_pipeline(1);
    telemetry::set_mode(Mode::Off);
    telemetry::reset();
    assert!(!first.is_empty(), "canonical form is empty");
    assert_eq!(first, second, "same seeded run produced different traces");
    // The canonical form names every instrumented layer.
    for needle in [
        "span datagen",
        "span datagen.shard[0]",
        "span datagen.shard/sim.solve",
        "span train",
        "span train/train.epoch[0]",
        "span tune",
        "span tune/tune.enumerate",
        "span tune/tune.score",
        "counter datagen.samples = 24",
        "counter train.epochs = 3",
        "counter tune.candidates = ",
        "hist train.grad_norm",
    ] {
        assert!(
            first.contains(needle),
            "canonical form lacks `{needle}`:\n{first}"
        );
    }
    assert_eq!(snap.counters["datagen.shards_generated"], 3);
    assert_eq!(snap.counters["datagen.shards_resumed"], 0);
    assert!(snap.counters["sim.solves"] >= 24);
    assert!(snap.counters["tune.candidates"] > 10);
    // histograms carry one sample per epoch
    assert_eq!(snap.histograms["train.epoch_loss"].len(), 3);
    assert_eq!(snap.histograms["train.val_loss"].len(), 3);
}

#[test]
fn golden_trace_is_identical_across_datagen_worker_counts() {
    let _l = lock();
    telemetry::set_mode(Mode::Trace);
    let (serial, _) = run_pipeline(1);
    let (parallel, _) = run_pipeline(4);
    telemetry::set_mode(Mode::Off);
    telemetry::reset();
    assert_eq!(
        serial, parallel,
        "datagen worker count leaked into the span tree / counters"
    );
}

/// Datasets and model weights must be bitwise identical whatever the
/// telemetry mode — recording must never perturb RNG streams or labels.
#[test]
fn telemetry_mode_never_changes_datasets_or_models() {
    let _l = lock();
    let run = |mode: Mode| {
        telemetry::set_mode(mode);
        telemetry::reset();
        let data = generate_dataset_with(
            &GenConfig::seen(),
            16,
            0xB17,
            &GenPlan::serial().with_shard_size(8).with_workers(2),
        );
        let mut model = ZeroTuneModel::new(ModelConfig {
            hidden: 16,
            seed: 2,
        });
        train(&mut model, &data, &mini_train_cfg());
        (
            serde_json::to_string(&data).expect("dataset serializes"),
            model.to_json(),
        )
    };
    let (data_off, model_off) = run(Mode::Off);
    let (data_summary, model_summary) = run(Mode::Summary);
    let (data_trace, model_trace) = run(Mode::Trace);
    telemetry::set_mode(Mode::Off);
    telemetry::reset();
    assert_eq!(data_off, data_summary, "summary mode changed the dataset");
    assert_eq!(data_off, data_trace, "trace mode changed the dataset");
    assert_eq!(model_off, model_summary, "summary mode changed the model");
    assert_eq!(model_off, model_trace, "trace mode changed the model");
}

/// Off mode really records nothing, even across threads.
#[test]
fn off_mode_snapshot_stays_empty_through_a_pipeline() {
    let _l = lock();
    telemetry::set_mode(Mode::Off);
    telemetry::reset();
    let data = generate_dataset_with(
        &GenConfig::seen(),
        8,
        0x0FF,
        &GenPlan::serial().with_shard_size(4).with_workers(2),
    );
    assert_eq!(data.len(), 8);
    assert!(telemetry::snapshot().is_empty());
}

/// The Chrome trace of a real run parses back, is non-empty, keeps
/// per-thread timestamps monotone and balances every B with an E.
#[test]
fn chrome_trace_of_real_run_is_well_formed() {
    let _l = lock();
    telemetry::set_mode(Mode::Trace);
    let (_, snap) = run_pipeline(2);
    telemetry::set_mode(Mode::Off);
    telemetry::reset();

    let json = snap.chrome_trace_json();
    let trace = telemetry::ChromeTrace::from_json(&json).expect("trace JSON parses");
    assert!(!trace.events.is_empty());

    let mut last_ts: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> =
        std::collections::BTreeMap::new();
    for e in &trace.events {
        if e.ph != 'C' {
            if let Some(prev) = last_ts.insert(e.tid, e.ts) {
                assert!(prev <= e.ts, "ts regressed on tid {}", e.tid);
            }
        }
        match e.ph {
            'B' => stacks.entry(e.tid).or_default().push(e.name.clone()),
            'E' => {
                let open = stacks.get_mut(&e.tid).and_then(Vec::pop);
                assert_eq!(
                    open.as_deref(),
                    Some(e.name.as_str()),
                    "E without matching B"
                );
            }
            'C' => {}
            other => panic!("unexpected phase {other}"),
        }
    }
    assert!(
        stacks.values().all(Vec::is_empty),
        "unclosed spans in trace"
    );
}
