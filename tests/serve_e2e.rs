//! End-to-end service tests for the zt-serve daemon.
//!
//! Every test boots a real server on an ephemeral loopback port and
//! talks to it over TCP with the blocking `http_request` client — the
//! same wire path `zt-load` and external clients use. The central
//! claims under test:
//!
//! * **offline equivalence** — `/predict` and `/tune` bodies are
//!   byte-identical to rendering the offline `predict_batch` / `tune`
//!   results through the same response structs (bitwise f64 equality,
//!   not approximate);
//! * **cache correctness** — a hit returns the exact bytes of the miss
//!   that populated it;
//! * **hot-swap atomicity** — every response under concurrent traffic
//!   is labeled with a model version whose weights produced it, never a
//!   mix;
//! * **graceful shutdown** — accepted connections are drained, not
//!   dropped;
//! * **structured failure** — malformed, oversized and misrouted
//!   requests get machine-readable 4xx bodies (`ZT109` for wire
//!   fingerprint tampering).
//!
//! Telemetry is process-global, so every test serializes behind one
//! mutex and the counter test resets state at quiescent points.

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::Duration;

use zerotune::core::model::{ModelConfig, ZeroTuneModel};
use zerotune::core::optimizer::{tune, OptimizerConfig};
use zerotune::core::{encode, CostEstimator, CostPrediction, FeatureMask};
use zerotune::dspsim::placement::ChainingMode;
use zerotune::query::benchmarks::{smart_grid_global, smart_grid_local, spike_detection};
use zerotune::query::{LogicalPlan, ParallelQueryPlan};
use zerotune::serve::{
    default_cluster, http_request, PredictResponse, ServeConfig, Server, ServerHandle, TuneResponse,
};
use zerotune::telemetry::{self, Mode};

use serde::Value;

/// Telemetry (and therefore the whole suite) is process-global state.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The daemon's boot model: `ModelConfig::default()`, same as `zt-serve`
/// without flags.
fn v1_model() -> ZeroTuneModel {
    ZeroTuneModel::new(ModelConfig::default())
}

/// A second-generation model with distinct weights for swap tests.
fn v2_model() -> ZeroTuneModel {
    ZeroTuneModel::new(ModelConfig {
        seed: 0x7777,
        ..ModelConfig::default()
    })
}

fn boot(cfg: ServeConfig) -> ServerHandle {
    Server::bind(cfg, v1_model())
        .and_then(zerotune::serve::BoundServer::spawn)
        .expect("boot zt-serve on an ephemeral port")
}

fn ephemeral() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServeConfig::default()
    }
}

/// Wire-envelope a plan exactly as a client would.
fn wire(plan: &LogicalPlan) -> String {
    let ir = plan.validate().expect("test plans are valid");
    ir.to_json(plan).expect("test plans serialize")
}

/// `/predict`-shaped request body for a deployment.
fn deployment_body(plan: &LogicalPlan, parallelism: Option<u32>) -> String {
    let env = wire(plan);
    match parallelism {
        None => format!("{{\"plan\":{env}}}"),
        Some(p) => {
            let par: Vec<String> = (0..plan.num_ops()).map(|_| p.to_string()).collect();
            format!("{{\"plan\":{env},\"parallelism\":[{}]}}", par.join(","))
        }
    }
}

/// The offline path the daemon must reproduce bit-for-bit: sealed
/// encode with auto chaining and the full mask, scored via
/// `predict_batch`.
fn offline_predict(
    model: &ZeroTuneModel,
    plan: &LogicalPlan,
    parallelism: Option<u32>,
) -> CostPrediction {
    let pqp = match parallelism {
        None => ParallelQueryPlan::new(plan.clone()),
        Some(p) => ParallelQueryPlan::with_parallelism(plan.clone(), vec![p; plan.num_ops()]),
    };
    pqp.validate().expect("test deployments are valid");
    let graph = encode(
        &pqp,
        &default_cluster(),
        ChainingMode::Auto,
        &FeatureMask::all(),
    );
    model.predict_batch(std::slice::from_ref(&graph))[0]
}

fn parse(body: &str) -> Value {
    serde_json::from_str(body).expect("response body is JSON")
}

fn num(v: &Value, key: &str) -> f64 {
    v.get(key)
        .and_then(Value::as_f64)
        .unwrap_or_else(|| panic!("response has numeric `{key}`: {v:?}"))
}

fn error_code(body: &str) -> String {
    let v = parse(body);
    match v.get("error").and_then(|e| e.get("code")) {
        Some(Value::Str(s)) => s.clone(),
        other => panic!("no error.code in {body}: {other:?}"),
    }
}

fn benchmark_plans() -> Vec<(&'static str, LogicalPlan)> {
    vec![
        ("spike_detection", spike_detection(1000.0)),
        ("smart_grid_local", smart_grid_local(1000.0)),
        ("smart_grid_global", smart_grid_global(2000.0)),
    ]
}

#[test]
fn predict_matches_offline_bitwise_for_benchmark_queries() {
    let _g = lock();
    let handle = boot(ephemeral());
    let model = v1_model();

    for (name, plan) in benchmark_plans() {
        for par in [None, Some(2)] {
            let resp = http_request(
                handle.addr(),
                "POST",
                "/predict",
                Some(&deployment_body(&plan, par)),
            )
            .expect("predict round-trip");
            assert_eq!(resp.status, 200, "{name}: {}", resp.body);

            // The strongest form of the equivalence claim: the whole
            // body equals rendering the offline prediction through the
            // same response struct, so every f64 is bitwise equal.
            let pred = offline_predict(&model, &plan, par);
            let expected = serde_json::to_string(&PredictResponse {
                model_version: 1,
                latency_ms: pred.latency_ms,
                throughput: pred.throughput,
            })
            .expect("render expected body");
            assert_eq!(resp.body, expected, "{name} par={par:?}");

            let v = parse(&resp.body);
            assert_eq!(num(&v, "latency_ms").to_bits(), pred.latency_ms.to_bits());
            assert_eq!(num(&v, "throughput").to_bits(), pred.throughput.to_bits());
        }
    }
    handle.shutdown();
}

#[test]
fn predict_cache_hit_returns_byte_identical_body() {
    let _g = lock();
    let handle = boot(ephemeral());
    let body = deployment_body(&spike_detection(1500.0), Some(4));

    let first = http_request(handle.addr(), "POST", "/predict", Some(&body)).expect("miss");
    let second = http_request(handle.addr(), "POST", "/predict", Some(&body)).expect("hit");
    assert_eq!(first.status, 200);
    assert_eq!(second.status, 200);
    assert_eq!(first.header("x-zt-cache"), Some("miss"));
    assert_eq!(second.header("x-zt-cache"), Some("hit"));
    assert_eq!(first.body, second.body, "cache hit must be byte-identical");

    let stats = handle.cache_stats();
    assert_eq!(stats.hits, 1);
    assert_eq!(stats.misses, 1);
    assert_eq!(stats.entries, 1);
    handle.shutdown();
}

#[test]
fn tune_matches_offline_tuner() {
    let _g = lock();
    let handle = boot(ephemeral());
    let model = v1_model();

    for (name, plan) in benchmark_plans() {
        let env = wire(&plan);
        let body = format!("{{\"plan\":{env},\"max_parallelism\":8,\"seed\":5,\"wt\":0.75}}");
        let resp =
            http_request(handle.addr(), "POST", "/tune", Some(&body)).expect("tune round-trip");
        assert_eq!(resp.status, 200, "{name}: {}", resp.body);

        let cfg = OptimizerConfig {
            strict: false,
            prune: true,
            max_parallelism: 8,
            seed: 5,
            wt: 0.75,
            ..OptimizerConfig::default()
        };
        let outcome = tune(&model, &plan, &default_cluster(), &cfg).expect("valid plan");
        let expected = serde_json::to_string(&TuneResponse {
            model_version: 1,
            outcome,
        })
        .expect("render expected body");
        assert_eq!(resp.body, expected, "{name}: /tune must equal offline tune");
    }
    handle.shutdown();
}

#[test]
fn explain_reports_prediction_bounds_and_attribution() {
    let _g = lock();
    let handle = boot(ephemeral());
    let model = v1_model();
    let plan = smart_grid_local(800.0);

    let resp = http_request(
        handle.addr(),
        "POST",
        "/explain",
        Some(&deployment_body(&plan, Some(2))),
    )
    .expect("explain round-trip");
    assert_eq!(resp.status, 200, "{}", resp.body);

    let v = parse(&resp.body);
    let pred = offline_predict(&model, &plan, Some(2));
    assert_eq!(num(&v, "latency_ms").to_bits(), pred.latency_ms.to_bits());
    assert_eq!(num(&v, "model_version") as u64, 1);
    let bounds = v
        .get("latency_bounds")
        .and_then(Value::as_seq)
        .expect("latency_bounds");
    let (lo, hi) = (
        bounds[0].as_f64().expect("lo"),
        bounds[1].as_f64().expect("hi"),
    );
    assert!(lo <= hi && lo.is_finite(), "bounds bracket: [{lo}, {hi}]");
    let impact = v
        .get("latency_impact")
        .and_then(Value::as_seq)
        .expect("latency_impact");
    assert_eq!(impact.len(), 3, "one impact per feature group");
    match v.get("report") {
        Some(Value::Str(s)) => assert!(!s.is_empty(), "rendered bounds table"),
        other => panic!("no report string: {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn lint_flags_oversubscription_and_passes_clean_deployments() {
    let _g = lock();
    let handle = boot(ephemeral());
    let plan = smart_grid_global(1000.0);

    // Clean deployment: no errors.
    let resp = http_request(
        handle.addr(),
        "POST",
        "/lint",
        Some(&deployment_body(&plan, Some(2))),
    )
    .expect("lint round-trip");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let v = parse(&resp.body);
    assert_eq!(num(&v, "errors") as u64, 0, "clean plan: {}", resp.body);

    // 64-way parallelism on a 40-slot default cluster must be flagged.
    let resp = http_request(
        handle.addr(),
        "POST",
        "/lint",
        Some(&deployment_body(&plan, Some(64))),
    )
    .expect("lint round-trip");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let v = parse(&resp.body);
    assert!(
        num(&v, "errors") as u64 >= 1,
        "oversubscribed deployment must produce errors: {}",
        resp.body
    );
    handle.shutdown();
}

/// Flip one hex digit of the envelope fingerprint.
fn tamper(env: &str) -> String {
    let key = "\"fingerprint\":\"";
    let at = env.find(key).expect("envelope has fingerprint") + key.len();
    let orig = &env[at..at + 16];
    let flipped = if orig.as_bytes()[0] == b'0' { "1" } else { "0" };
    format!("{}{}{}", &env[..at], flipped, &env[at + 1..])
}

#[test]
fn tampered_fingerprint_is_rejected_as_zt109_everywhere() {
    let _g = lock();
    let handle = boot(ephemeral());
    let env = tamper(&wire(&spike_detection(1000.0)));
    let body = format!("{{\"plan\":{env}}}");

    // /predict and /tune refuse outright with the stable code.
    for path in ["/predict", "/tune"] {
        let resp = http_request(handle.addr(), "POST", path, Some(&body)).expect("round-trip");
        assert_eq!(resp.status, 400, "{path}: {}", resp.body);
        assert_eq!(error_code(&resp.body), "ZT109", "{path}: {}", resp.body);
    }

    // /lint folds it into the report instead (that is the endpoint's job).
    let resp = http_request(handle.addr(), "POST", "/lint", Some(&body)).expect("round-trip");
    assert_eq!(resp.status, 200, "{}", resp.body);
    let v = parse(&resp.body);
    assert!(num(&v, "errors") as u64 >= 1);
    assert!(
        resp.body.contains("\"ZT109\""),
        "lint report names ZT109: {}",
        resp.body
    );
    handle.shutdown();
}

#[test]
fn malformed_oversized_and_misrouted_requests_fail_structurally() {
    let _g = lock();
    let cfg = ServeConfig {
        max_body_bytes: 1024,
        ..ephemeral()
    };
    let handle = boot(cfg);

    let resp = http_request(handle.addr(), "POST", "/predict", Some("{not json")).expect("rt");
    assert_eq!(
        (resp.status, error_code(&resp.body).as_str()),
        (400, "bad_json")
    );

    let resp = http_request(handle.addr(), "POST", "/predict", Some("{}")).expect("rt");
    assert_eq!(
        (resp.status, error_code(&resp.body).as_str()),
        (400, "missing_field")
    );

    let oversized = format!("{{\"pad\":\"{}\"}}", "x".repeat(4096));
    let resp = http_request(handle.addr(), "POST", "/predict", Some(&oversized)).expect("rt");
    assert_eq!(
        (resp.status, error_code(&resp.body).as_str()),
        (413, "payload_too_large")
    );

    let resp = http_request(handle.addr(), "POST", "/nope", Some("{}")).expect("rt");
    assert_eq!(
        (resp.status, error_code(&resp.body).as_str()),
        (404, "unknown_route")
    );

    let resp = http_request(handle.addr(), "GET", "/predict", None).expect("rt");
    assert_eq!(
        (resp.status, error_code(&resp.body).as_str()),
        (405, "method_not_allowed")
    );

    let bad_par = format!(
        "{{\"plan\":{},\"parallelism\":[1]}}",
        wire(&spike_detection(1000.0))
    );
    let resp = http_request(handle.addr(), "POST", "/predict", Some(&bad_par)).expect("rt");
    assert_eq!(
        (resp.status, error_code(&resp.body).as_str()),
        (400, "bad_parallelism")
    );
    handle.shutdown();
}

#[test]
fn hot_swap_relabels_and_rescores_with_the_new_weights() {
    let _g = lock();
    let handle = boot(ephemeral());
    let plan = smart_grid_local(1200.0);
    let body = deployment_body(&plan, Some(2));
    let v1 = offline_predict(&v1_model(), &plan, Some(2));
    let v2 = offline_predict(&v2_model(), &plan, Some(2));
    assert_ne!(
        v1.latency_ms.to_bits(),
        v2.latency_ms.to_bits(),
        "swap test needs distinguishable models"
    );

    let resp = http_request(handle.addr(), "POST", "/predict", Some(&body)).expect("rt");
    let v = parse(&resp.body);
    assert_eq!(num(&v, "model_version") as u64, 1);
    assert_eq!(num(&v, "latency_ms").to_bits(), v1.latency_ms.to_bits());

    // Swap over the HTTP path, as an operator would.
    let resp = http_request(handle.addr(), "POST", "/swap", Some(&v2_model().to_json()))
        .expect("swap round-trip");
    assert_eq!(resp.status, 200, "{}", resp.body);
    assert_eq!(num(&parse(&resp.body), "model_version") as u64, 2);
    assert_eq!(handle.model_version(), 2);

    // Same request now scores under the new weights — the v1 cache
    // entry must not leak through.
    let resp = http_request(handle.addr(), "POST", "/predict", Some(&body)).expect("rt");
    assert_eq!(resp.header("x-zt-cache"), Some("miss"));
    let v = parse(&resp.body);
    assert_eq!(num(&v, "model_version") as u64, 2);
    assert_eq!(num(&v, "latency_ms").to_bits(), v2.latency_ms.to_bits());

    // A model that does not parse is rejected and leaves the registry alone.
    let resp = http_request(handle.addr(), "POST", "/swap", Some("{broken")).expect("rt");
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert_eq!(error_code(&resp.body), "model_rejected");
    assert_eq!(handle.model_version(), 2);
    handle.shutdown();
}

#[test]
fn hot_swap_mid_traffic_never_serves_a_mixed_version_response() {
    let _g = lock();
    let handle = boot(ephemeral());
    let model1 = v1_model();
    let model2 = v2_model();

    // Expected bitwise answers for both generations, per request body.
    let plans: Vec<LogicalPlan> = (0..6)
        .map(|i| spike_detection(500.0 + 100.0 * f64::from(i)))
        .collect();
    let expect: Vec<(String, u64, u64)> = plans
        .iter()
        .map(|p| {
            (
                deployment_body(p, Some(2)),
                offline_predict(&model1, p, Some(2)).latency_ms.to_bits(),
                offline_predict(&model2, p, Some(2)).latency_ms.to_bits(),
            )
        })
        .collect();

    let addr = handle.addr();
    let expect_ref = &expect;
    // Swap-guarded lint + certification make `swap_model` take tens of
    // milliseconds, so a fixed request count can drain before the swap
    // lands. Workers instead keep issuing traffic until they have sent at
    // least two requests *after* observing the swap-completed flag (so
    // every worker provably exercises the v2 generation), with a floor of
    // 40 requests to overlap the swap window and a generous cap so a
    // wedged swap cannot hang the test.
    let swapped = std::sync::atomic::AtomicBool::new(false);
    let swapped_ref = &swapped;
    std::thread::scope(|scope| {
        let workers: Vec<_> = (0..4)
            .map(|w| {
                scope.spawn(move || {
                    let mut seen = Vec::new();
                    let mut i = 0usize;
                    let mut post_swap = 0usize;
                    while (i < 40 || post_swap < 2) && i < 20_000 {
                        if swapped_ref.load(std::sync::atomic::Ordering::Acquire) {
                            post_swap += 1;
                        }
                        let (body, b1, b2) = &expect_ref[(w + i) % expect_ref.len()];
                        let resp = http_request(addr, "POST", "/predict", Some(body))
                            .expect("no dropped connections during swap");
                        assert_eq!(resp.status, 200, "{}", resp.body);
                        let v = parse(&resp.body);
                        let version = num(&v, "model_version") as u64;
                        let bits = num(&v, "latency_ms").to_bits();
                        // The atomicity claim: version labels the exact
                        // weights that scored this response.
                        match version {
                            1 => assert_eq!(bits, *b1, "v1-labeled body with non-v1 weights"),
                            2 => assert_eq!(bits, *b2, "v2-labeled body with non-v2 weights"),
                            other => panic!("impossible model version {other}"),
                        }
                        seen.push(version);
                        i += 1;
                    }
                    seen
                })
            })
            .collect();

        std::thread::sleep(Duration::from_millis(15));
        handle.swap_model(v2_model()).expect("fresh model swaps in");
        swapped.store(true, std::sync::atomic::Ordering::Release);

        let seen: Vec<u64> = workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect();
        assert!(
            seen.contains(&2),
            "swap landed after all traffic; widen the window"
        );
    });
    handle.shutdown();
}

#[test]
fn telemetry_counters_sum_exactly_under_concurrency_and_swap() {
    let _g = lock();
    telemetry::set_mode(Mode::Summary);
    telemetry::reset();

    let handle = boot(ephemeral());
    let bodies: Vec<String> = (0..6)
        .map(|i| deployment_body(&smart_grid_local(600.0 + 50.0 * f64::from(i)), Some(2)))
        .collect();

    const THREADS: usize = 4;
    const PER_THREAD: usize = 30;
    let addr = handle.addr();
    let bodies_ref = &bodies;
    std::thread::scope(|scope| {
        for w in 0..THREADS {
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    let body = &bodies_ref[(w * PER_THREAD + i) % bodies_ref.len()];
                    let resp = http_request(addr, "POST", "/predict", Some(body))
                        .expect("no dropped connections");
                    assert_eq!(resp.status, 200, "{}", resp.body);
                }
            });
        }
        std::thread::sleep(Duration::from_millis(10));
        handle.swap_model(v2_model()).expect("swap mid-traffic");
    });

    let issued = (THREADS * PER_THREAD) as u64;
    assert_eq!(handle.request_count(), issued, "in-process request count");
    handle.shutdown();

    // After shutdown the registry is quiescent: every request must be
    // accounted for, exactly once, hit + miss partitioning the total.
    let snap = telemetry::snapshot();
    assert_eq!(
        snap.counters.get("serve.requests").copied(),
        Some(issued),
        "serve.requests must count each accepted request exactly once"
    );
    let hits = snap.counters.get("serve.cache_hit").copied().unwrap_or(0);
    let misses = snap.counters.get("serve.cache_miss").copied().unwrap_or(0);
    assert_eq!(
        hits + misses,
        issued,
        "every /predict is exactly one hit or one miss"
    );
    assert!(misses >= 1, "fresh server must miss at least once");
    assert_eq!(snap.counters.get("serve.swap").copied(), Some(1));
    assert!(
        snap.span_durations.contains_key("serve.predict"),
        "predict spans recorded"
    );
    assert!(
        snap.histograms.contains_key("serve.predict_ms"),
        "predict latency histogram recorded"
    );

    telemetry::set_mode(Mode::Off);
    telemetry::reset();
}

#[test]
fn graceful_shutdown_drains_every_accepted_connection() {
    let _g = lock();
    let cfg = ServeConfig {
        workers: 2,
        ..ephemeral()
    };
    let handle = boot(cfg);
    let addr = handle.addr();

    // Clients connect *before* shutdown begins but only send their
    // request afterwards: a server that drops the accept queue on
    // shutdown would strand them.
    let clients: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect before shutdown");
                stream
                    .set_read_timeout(Some(Duration::from_secs(20)))
                    .unwrap();
                std::thread::sleep(Duration::from_millis(150));
                stream
                    .write_all(b"GET /healthz HTTP/1.1\r\nhost: x\r\ncontent-length: 0\r\nconnection: close\r\n\r\n")
                    .expect("write after shutdown started");
                let mut buf = String::new();
                stream.read_to_string(&mut buf).expect("read response");
                buf
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(50));
    handle.shutdown(); // blocks until the queue is drained

    for client in clients {
        let resp = client.join().expect("client thread");
        assert!(
            resp.starts_with("HTTP/1.1 200"),
            "accepted connection must be answered, got: {resp}"
        );
    }
}

#[test]
fn overload_sheds_with_503_instead_of_hanging() {
    let _g = lock();
    let cfg = ServeConfig {
        workers: 1,
        accept_queue: 1,
        ..ephemeral()
    };
    let handle = boot(cfg);
    let addr = handle.addr();

    // `a` occupies the single worker (it never sends), `b` fills the
    // one-deep accept queue, so `c` must be shed immediately.
    let a = TcpStream::connect(addr).expect("a connects");
    std::thread::sleep(Duration::from_millis(100));
    let b = TcpStream::connect(addr).expect("b connects");
    std::thread::sleep(Duration::from_millis(100));

    let resp = http_request(addr, "GET", "/healthz", None).expect("shed response");
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert_eq!(error_code(&resp.body), "overloaded");

    drop(a);
    drop(b);
    handle.shutdown();
}

#[test]
fn healthz_reports_versioned_state() {
    let _g = lock();
    let handle = boot(ephemeral());
    let body = deployment_body(&spike_detection(900.0), None);
    http_request(handle.addr(), "POST", "/predict", Some(&body)).expect("warm-up predict");

    let resp = http_request(handle.addr(), "GET", "/healthz", None).expect("healthz");
    assert_eq!(resp.status, 200);
    let v = parse(&resp.body);
    assert_eq!(num(&v, "model_version") as u64, 1);
    assert_eq!(num(&v, "requests") as u64, 2, "predict + this healthz");
    assert_eq!(num(&v, "swaps") as u64, 0);
    assert_eq!(num(&v, "cache_misses") as u64, 1);
    assert_eq!(num(&v, "cache_entries") as u64, 1);
    match v.get("status") {
        Some(Value::Str(s)) => assert_eq!(s, "ok"),
        other => panic!("no status: {other:?}"),
    }
    handle.shutdown();
}

/// An otherwise well-formed model whose weights were inflated 1e4x: it
/// passes the ZT4xx lint gate (finite weights; ZT405 is warning-only)
/// but its interval certificate explodes past the fresh-init reference —
/// the certification gate must reject it with ZT601.
fn uncertifiable_model() -> ZeroTuneModel {
    let mut model = v2_model();
    let ids: Vec<_> = model.store.ids().collect();
    for id in ids {
        for v in &mut model.store.value_mut(id).data {
            *v *= 1e4;
        }
    }
    model
}

#[test]
fn swap_rejects_uncertifiable_model_and_old_version_serves_byte_identical() {
    let _g = lock();
    let handle = boot(ephemeral());
    let plan = spike_detection(900.0);
    let body = deployment_body(&plan, Some(2));

    let before = http_request(handle.addr(), "POST", "/predict", Some(&body)).expect("rt");
    assert_eq!(before.status, 200, "{}", before.body);
    assert_eq!(num(&parse(&before.body), "model_version") as u64, 1);

    // The deploy gate: 422 with the certification diagnostic's stable
    // code in the structured error body.
    let resp = http_request(
        handle.addr(),
        "POST",
        "/swap",
        Some(&uncertifiable_model().to_json()),
    )
    .expect("swap round-trip");
    assert_eq!(resp.status, 422, "{}", resp.body);
    assert_eq!(error_code(&resp.body), "ZT601", "{}", resp.body);
    assert_eq!(handle.model_version(), 1, "old version keeps serving");

    // The old version's responses are byte-identical to before the
    // rejected swap (and still served from the untouched cache).
    let after = http_request(handle.addr(), "POST", "/predict", Some(&body)).expect("rt");
    assert_eq!(after.status, 200);
    assert_eq!(after.header("x-zt-cache"), Some("hit"));
    assert_eq!(
        before.body, after.body,
        "rejected swap must not perturb serving"
    );
    handle.shutdown();
}

#[test]
fn healthz_reports_certificate_summary_of_the_active_version() {
    let _g = lock();
    let handle = boot(ephemeral());

    let resp = http_request(handle.addr(), "GET", "/healthz", None).expect("healthz");
    assert_eq!(resp.status, 200);
    let v = parse(&resp.body);
    let cert = v
        .get("certificate")
        .unwrap_or_else(|| panic!("healthz carries a certificate summary: {}", resp.body));
    match cert.get("certified") {
        Some(Value::Bool(true)) => {}
        other => panic!("boot model must be certified, got {other:?}: {}", resp.body),
    }
    match cert.get("errors") {
        Some(Value::Seq(errs)) => assert!(errs.is_empty(), "{}", resp.body),
        other => panic!("no errors list: {other:?}"),
    }
    assert!(num(cert, "magnitude_log10").is_finite());
    assert!(num(cert, "max_depth") >= 1.0);

    // After a successful swap, /healthz reflects the new version's
    // certificate (still certified — v2 is a healthy fresh model).
    handle.swap_model(v2_model()).expect("clean model swaps");
    let resp = http_request(handle.addr(), "GET", "/healthz", None).expect("healthz");
    let v = parse(&resp.body);
    assert_eq!(num(&v, "model_version") as u64, 2);
    match v.get("certificate").and_then(|c| c.get("certified")) {
        Some(Value::Bool(true)) => {}
        other => panic!("swapped model must be certified, got {other:?}"),
    }
    handle.shutdown();
}
