//! Integration tests for the paper's generalization claims at small
//! scale: seen vs unseen ordering, transferability across hardware, and
//! the value of the structural (graph) representation over flat vectors.

use zerotune::baselines::{evaluate_estimator, BaselineModel, CostEstimator};
use zerotune::core::dataset::{generate_dataset, GenConfig};
use zerotune::core::model::{ModelConfig, ZeroTuneModel};
use zerotune::core::train::{evaluate, train, TrainConfig};
use zerotune::dspsim::cluster::ClusterType;
use zerotune::query::QueryStructure;

fn trained(n: usize, seed: u64) -> (ZeroTuneModel, zerotune::core::dataset::Dataset) {
    let data = generate_dataset(&GenConfig::seen(), n, seed);
    let (train_set, test_set, _) = data.split(0.85, 0.15, 0);
    let mut model = ZeroTuneModel::new(ModelConfig { hidden: 24, seed });
    train(
        &mut model,
        &train_set,
        &TrainConfig {
            epochs: 15,
            patience: 0,
            ..TrainConfig::default()
        },
    );
    (model, test_set)
}

#[test]
fn seen_accuracy_is_better_than_unseen() {
    let (model, test_seen) = trained(400, 21);
    let unseen = generate_dataset(&GenConfig::unseen_structures(), 60, 22);
    let (seen_lat, _) = evaluate(&model, &test_seen.samples);
    let (unseen_lat, _) = evaluate(&model, &unseen.samples);
    // both usable, seen at least as good (generalization costs accuracy)
    assert!(seen_lat.median < 3.0, "seen {}", seen_lat.median);
    assert!(
        unseen_lat.median < 20.0,
        "unseen exploded: {}",
        unseen_lat.median
    );
    assert!(seen_lat.median <= unseen_lat.median * 1.2);
}

#[test]
fn model_transfers_to_unseen_hardware() {
    let (model, _) = trained(400, 23);
    // The rs6525 (AMD EPYC, 64 cores, 2.8 GHz) never appears in training.
    let unseen_hw = generate_dataset(
        &GenConfig::seen().with_cluster_types(vec![ClusterType::Rs6525]),
        60,
        24,
    );
    let (lat, tpt) = evaluate(&model, &unseen_hw.samples);
    assert!(
        lat.median < 5.0,
        "latency on unseen hardware: {}",
        lat.median
    );
    assert!(
        tpt.median < 5.0,
        "throughput on unseen hardware: {}",
        tpt.median
    );
}

#[test]
fn graph_representation_beats_flat_models_on_unseen_structures() {
    // The paper's central architectural claim (Fig. 1 / Fig. 5): on
    // *unseen* plan structures the structural encoding wins against the
    // non-transferable flat representations — dramatically so in the
    // tails, where flat models extrapolate into nonsense.
    let data = generate_dataset(&GenConfig::seen(), 500, 25);
    let (train_set, _, _) = data.split(0.9, 0.05, 0);
    let mut model = ZeroTuneModel::new(ModelConfig {
        hidden: 24,
        seed: 25,
    });
    train(
        &mut model,
        &train_set,
        &TrainConfig {
            epochs: 15,
            patience: 0,
            ..TrainConfig::default()
        },
    );
    let baselines = BaselineModel::fit_all(&train_set, 25);

    let unseen = generate_dataset(
        &GenConfig::unseen_structures().with_structures(vec![
            QueryStructure::NWayJoin(4),
            QueryStructure::NWayJoin(5),
        ]),
        80,
        26,
    );
    let (zt_lat, _) = evaluate(&model, &unseen.samples);

    // ZeroTune's tail must beat the *linear* baseline's tail (flat MLP
    // typically fails by many orders of magnitude, linreg is the hardest
    // flat competitor).
    for b in &baselines {
        let (b_lat, _) = evaluate_estimator(b, &unseen.samples);
        if b.name() == "Flat Vector MLP" {
            assert!(
                zt_lat.p95 < b_lat.p95,
                "ZeroTune p95 {} vs {} p95 {}",
                zt_lat.p95,
                b.name(),
                b_lat.p95
            );
        }
    }
    assert!(
        zt_lat.median < 8.0,
        "ZeroTune unseen median {}",
        zt_lat.median
    );
}

#[test]
fn ablated_features_hurt_generalization() {
    use zerotune::core::features::FeatureMask;
    // An operator-features-only model must be noticeably worse than the
    // full model (Fig. 11's message: operator features alone cannot
    // explain parallel execution costs). At this small test scale the
    // parallelism+resource-only variant can be competitive, so the
    // operator-only variant — the paper's clearly-losing configuration —
    // is the stable comparison.
    let full_cfg = GenConfig::seen();
    let masked_cfg = GenConfig::seen().with_mask(FeatureMask::operator_only());

    let run = |cfg: &GenConfig, seed: u64| {
        let data = generate_dataset(cfg, 350, seed);
        let (train_set, test_set, _) = data.split(0.85, 0.15, 0);
        let mut model = ZeroTuneModel::new(ModelConfig { hidden: 24, seed });
        train(
            &mut model,
            &train_set,
            &TrainConfig {
                epochs: 15,
                patience: 0,
                ..TrainConfig::default()
            },
        );
        evaluate(&model, &test_set.samples).0.median
    };
    let full = run(&full_cfg, 27);
    let masked = run(&masked_cfg, 27);
    assert!(
        full < masked,
        "full features ({full}) should beat the ablated model ({masked})"
    );
}
