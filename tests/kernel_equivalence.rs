//! Property-based equivalence of the 8-wide lane kernels against their
//! scalar oracles — the "every fast path has a slow twin" contract.
//!
//! The policy mirrors the tape-vs-tapeless one (`tapeless_equivalence.rs`):
//! **bitwise** wherever the lane kernel performs the exact operation chain
//! of the oracle, a **≤1e-6 magnitude-relative** tolerance where a build
//! or call shape legitimately regroups one rounding step:
//!
//! * matmul with pre-zeroed `out` — bitwise on the default target; under a
//!   hardware-FMA build (`target_feature = "fma"`) the lane tile fuses each
//!   multiply-add into one rounding, so the tolerance branch applies;
//! * matmul accumulating into a *non-zero* `out` — the lane tile folds the
//!   prior value in with one final add instead of threading it through the
//!   sum chain, so the tolerance branch always applies;
//! * ReLU / add / Adam — element-wise, bitwise unconditionally.
//!
//! The tolerance is relative to the f64-accumulated magnitude Σ|a·b| (plus
//! |out₀| for the accumulate case), **not** to the result: under heavy
//! cancellation the result can be arbitrarily smaller than the rounding
//! error of either correct evaluation order.
//!
//! A final end-to-end section trains a small model and pins inference
//! determinism under the *active* kernel set; CI runs this whole binary
//! twice (default and `--features zt-nn/scalar-kernels`), which is what
//! pins the two dispatch configurations to each other at the model level.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use zerotune::core::datagen::{generate_dataset_with, GenPlan};
use zerotune::core::dataset::GenConfig;
use zerotune::core::features::FeatureMask;
use zerotune::core::graph::encode;
use zerotune::core::model::{ModelConfig, ZeroTuneModel};
use zerotune::core::train::{train, TrainConfig};
use zerotune::dspsim::cluster::{Cluster, ClusterType};
use zerotune::dspsim::placement::ChainingMode;
use zerotune::nn::kernels::{
    adam_update_lanes, adam_update_scalar, add_assign_lanes, add_assign_scalar, matmul_into_lanes,
    matmul_into_scalar, relu_lanes, relu_scalar, AdamStep, ACTIVE_KERNELS, LANES,
};
use zerotune::nn::Scratch;
use zerotune::query::{ParallelQueryPlan, QueryGenerator, QueryStructure};

/// Deterministic data for a shape drawn by proptest: finite values in
/// [-2, 2] with a controllable fraction of exact zeros (the kernels'
/// zero-skip path must stay value-neutral).
fn fill(seed: u64, n: usize, zero_every: usize) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..n)
        .map(|i| {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            if zero_every > 0 && i % zero_every == 0 {
                0.0
            } else {
                ((state >> 40) as f32 / (1u64 << 23) as f32) - 2.0
            }
        })
        .collect()
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Assert the dual policy on a matmul output pair. `acc_base` is the
/// magnitude of the pre-existing `out` content (0 for pre-zeroed calls);
/// `force_tolerance` selects the ≤1e-6 branch even on non-FMA builds
/// (used for the accumulate-into-non-zero case).
#[allow(clippy::too_many_arguments)]
fn assert_matmul_policy(
    a: &[f32],
    b: &[f32],
    rows: usize,
    inner: usize,
    cols: usize,
    out_scalar: &[f32],
    out_lanes: &[f32],
    out0: &[f32],
    force_tolerance: bool,
) -> Result<(), TestCaseError> {
    if force_tolerance || cfg!(target_feature = "fma") {
        for (idx, (s, l)) in out_scalar.iter().zip(out_lanes).enumerate() {
            let (r, c) = (idx / cols.max(1), idx % cols.max(1));
            let mag: f64 = (0..inner)
                .map(|k| f64::from(a[r * inner + k].abs()) * f64::from(b[k * cols + c].abs()))
                .sum::<f64>()
                + f64::from(out0[idx].abs());
            prop_assert!(
                f64::from((s - l).abs()) <= 1e-6 * mag.max(1e-30),
                "{rows}x{inner}x{cols} out[{idx}]: scalar {s} vs lanes {l} (mag {mag})"
            );
        }
    } else {
        prop_assert_eq!(bits(out_scalar), bits(out_lanes));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Lane matmul equals the scalar oracle for arbitrary shapes —
    /// including empty dims, sub-lane widths, and every tail residue
    /// `cols % LANES` — on a pre-zeroed output.
    #[test]
    fn matmul_lanes_matches_oracle_on_zeroed_out(
        rows in 0usize..12,
        inner in 0usize..40,
        cols in 0usize..40,
        seed in 0u64..1_000_000,
        zero_every in 0usize..6,
    ) {
        let a = fill(seed, rows * inner, zero_every);
        let b = fill(seed ^ 0xB, inner * cols, 0);
        let out0 = vec![0.0f32; rows * cols];
        let mut out_s = out0.clone();
        let mut out_l = out0.clone();
        matmul_into_scalar(&a, rows, inner, &b, cols, &mut out_s);
        matmul_into_lanes(&a, rows, inner, &b, cols, &mut out_l);
        assert_matmul_policy(&a, &b, rows, inner, cols, &out_s, &out_l, &out0, false)?;
    }

    /// Accumulating into a non-zero `out` regroups exactly one rounding
    /// step in the lane kernel (prior value folded in last), so the
    /// magnitude-relative branch of the policy applies on every build.
    #[test]
    fn matmul_accumulate_into_nonzero_out_within_tolerance(
        rows in 1usize..10,
        inner in 1usize..32,
        cols in 1usize..32,
        seed in 0u64..1_000_000,
    ) {
        let a = fill(seed, rows * inner, 5);
        let b = fill(seed ^ 0xB, inner * cols, 0);
        let out0 = fill(seed ^ 0xC, rows * cols, 0);
        let mut out_s = out0.clone();
        let mut out_l = out0.clone();
        matmul_into_scalar(&a, rows, inner, &b, cols, &mut out_s);
        matmul_into_lanes(&a, rows, inner, &b, cols, &mut out_l);
        assert_matmul_policy(&a, &b, rows, inner, cols, &out_s, &out_l, &out0, true)?;
    }

    /// Every tail residue 0..LANES gets its own const-generic kernel —
    /// pin each one explicitly by sweeping cols across a full lane span
    /// (plus the 4-lane register tile boundary at 32).
    #[test]
    fn matmul_tail_widths_all_match(
        base_idx in 0usize..3,
        tail in 0usize..LANES,
        seed in 0u64..100_000,
    ) {
        let (rows, inner) = (3usize, 17usize);
        let cols = [0usize, LANES, 4 * LANES][base_idx] + tail;
        let a = fill(seed, rows * inner, 4);
        let b = fill(seed ^ 0xB, inner * cols, 0);
        let out0 = vec![0.0f32; rows * cols];
        let mut out_s = out0.clone();
        let mut out_l = out0.clone();
        matmul_into_scalar(&a, rows, inner, &b, cols, &mut out_s);
        matmul_into_lanes(&a, rows, inner, &b, cols, &mut out_l);
        assert_matmul_policy(&a, &b, rows, inner, cols, &out_s, &out_l, &out0, false)?;
    }

    /// ReLU and add are element-wise: lane blocking cannot reorder
    /// anything, so the twins are bitwise-equal on every build.
    #[test]
    fn relu_and_add_are_bitwise_equal(
        n in 0usize..200,
        seed in 0u64..1_000_000,
    ) {
        let src = fill(seed, n, 7);
        let mut r_s = src.clone();
        let mut r_l = src.clone();
        relu_scalar(&mut r_s);
        relu_lanes(&mut r_l);
        prop_assert_eq!(bits(&r_s), bits(&r_l));

        let mut d_s = fill(seed ^ 0xD, n, 0);
        let mut d_l = d_s.clone();
        add_assign_scalar(&mut d_s, &src);
        add_assign_lanes(&mut d_l, &src);
        prop_assert_eq!(bits(&d_s), bits(&d_l));
    }

    /// The Adam twins share `adam_one` token for token; state (`value`,
    /// `m`, `v`) stays bitwise-identical through a multi-step run.
    #[test]
    fn adam_twins_stay_bitwise_identical_over_steps(
        n in 0usize..150,
        steps in 1usize..5,
        seed in 0u64..1_000_000,
    ) {
        let mut val_s = fill(seed, n, 0);
        let mut m_s = vec![0.0f32; n];
        let mut v_s = vec![0.0f32; n];
        let (mut val_l, mut m_l, mut v_l) = (val_s.clone(), m_s.clone(), v_s.clone());
        for t in 1..=steps {
            let step = AdamStep {
                lr: 1e-3,
                beta1: 0.9,
                beta2: 0.999,
                eps: 1e-8,
                b1t: 1.0 - 0.9f32.powi(t as i32),
                b2t: 1.0 - 0.999f32.powi(t as i32),
            };
            let grad = fill(seed ^ t as u64, n, 9);
            adam_update_scalar(&mut val_s, &mut m_s, &mut v_s, &grad, &step);
            adam_update_lanes(&mut val_l, &mut m_l, &mut v_l, &grad, &step);
        }
        prop_assert_eq!(bits(&val_s), bits(&val_l));
        prop_assert_eq!(bits(&m_s), bits(&m_l));
        prop_assert_eq!(bits(&v_s), bits(&v_l));
    }
}

// ---------------------------------------------------------------------
// End-to-end: the *active* kernel set under the full model.
// CI runs this binary under both kernel configurations; each run pins
// determinism and finiteness, and the shared scalar oracle above pins the
// two configurations to each other.
// ---------------------------------------------------------------------

fn trained_model_and_graphs() -> (ZeroTuneModel, Vec<zerotune::core::graph::GraphEncoding>) {
    let data = generate_dataset_with(
        &GenConfig::seen(),
        24,
        0xCE_77E1,
        &GenPlan::serial().with_shard_size(8),
    );
    let mut model = ZeroTuneModel::new(ModelConfig {
        hidden: 16,
        seed: 11,
    });
    train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 3,
            batch_size: 8,
            patience: 0,
            seed: 7,
            ..TrainConfig::default()
        },
    );
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    let cluster = Cluster::homogeneous(ClusterType::M510, 4, 10.0);
    let graphs = (0..6)
        .map(|i| {
            let plan = QueryGenerator::seen().generate(QueryStructure::Linear, &mut rng);
            let n = plan.num_ops();
            let pqp = ParallelQueryPlan::with_parallelism(plan, vec![1 + i as u32 * 3; n]);
            encode(&pqp, &cluster, ChainingMode::Auto, &FeatureMask::all())
        })
        .collect();
    (model, graphs)
}

/// Training then inference under the active kernel flavor is
/// deterministic (bit-identical across repeat runs) and finite.
#[test]
fn trained_model_inference_is_deterministic_under_active_kernels() {
    let (model_a, graphs) = trained_model_and_graphs();
    let (model_b, _) = trained_model_and_graphs();
    let mut scratch = Scratch::new();
    for g in &graphs {
        let out_a = model_a.forward_infer(g, &mut scratch);
        let out_b = model_b.forward_infer(g, &mut scratch);
        assert_eq!(out_a.len(), 2, "read-out head is (latency, throughput)");
        assert_eq!(
            bits(&out_a),
            bits(&out_b),
            "train+infer must be deterministic under {ACTIVE_KERNELS} kernels"
        );
        assert!(
            out_a.iter().all(|v| v.is_finite()),
            "non-finite prediction under {ACTIVE_KERNELS} kernels"
        );
    }
}
